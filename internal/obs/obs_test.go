package obs

import (
	"strings"
	"testing"

	"superfe/internal/flowkey"
	"superfe/internal/gpv"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	g := r.Gauge("g", "a gauge")
	h := r.Histogram("h", "a histogram", []int64{1, 4, 16})
	r.Seal()

	c.Inc()
	c.Add(4)
	g.Add(10)
	g.Add(-3)
	for _, x := range []int64{0, 1, 2, 5, 100} {
		h.Observe(x)
	}

	s := r.Snapshot()
	if v, ok := s.Value("c_total"); !ok || v != 5 {
		t.Errorf("counter = %d,%v, want 5", v, ok)
	}
	if v, ok := s.Value("g"); !ok || int64(v) != 7 {
		t.Errorf("gauge = %d,%v, want 7", int64(v), ok)
	}
	count, sum, buckets, ok := s.HistogramValue("h")
	if !ok || count != 5 {
		t.Fatalf("histogram count = %d,%v, want 5", count, ok)
	}
	if sum != 108 {
		t.Errorf("histogram sum = %d, want 108", sum)
	}
	// Edges 1,4,16 (+Inf): {0,1}→bucket0, {2}→bucket1, {5}→bucket2, {100}→+Inf.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if buckets[i] != w {
			t.Errorf("bucket[%d] = %d, want %d", i, buckets[i], w)
		}
	}
}

func TestZeroValueHandlesAreNoOps(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	c.Inc()
	c.Add(3)
	g.Set(9)
	g.Add(-1)
	h.Observe(42) // must not panic
}

func TestRegisterAfterSealPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "first")
	r.Seal()
	defer func() {
		msg, _ := recover().(string)
		if !strings.HasPrefix(msg, "superfe:") {
			t.Fatalf("panic = %q, want superfe: prefix", msg)
		}
	}()
	r.Counter("b_total", "late")
	t.Fatal("registration after Seal did not panic")
}

func TestMergeSnapshotsAndAppend(t *testing.T) {
	mk := func(c1, g1 uint64) *Snapshot {
		r := NewRegistry()
		c := r.Counter("c_total", "counter")
		g := r.Gauge("g", "gauge")
		r.Seal()
		c.Add(c1)
		g.Add(int64(g1))
		return r.Snapshot()
	}
	merged := MergeSnapshots(mk(3, 10), mk(4, 20))
	if v, _ := merged.Value("c_total"); v != 7 {
		t.Errorf("merged counter = %d, want 7", v)
	}
	if v, _ := merged.Value("g"); v != 30 {
		t.Errorf("merged gauge = %d, want 30 (sum-at-snapshot)", v)
	}

	extra := NewRegistry()
	ec := extra.Counter("extra_total", "router counter")
	extra.Seal()
	ec.Add(99)
	merged.Append(extra.Snapshot())
	if v, ok := merged.Value("extra_total"); !ok || v != 99 {
		t.Errorf("appended series = %d,%v, want 99 (slot re-offset)", v, ok)
	}
	if v, _ := merged.Value("c_total"); v != 7 {
		t.Errorf("append disturbed existing slots: c_total = %d", v)
	}
}

func TestDeltaFromDiffsCountersCarriesGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "counter")
	g := r.Gauge("g", "gauge")
	h := r.Histogram("h", "histogram", []int64{10})
	r.Seal()

	c.Add(5)
	g.Set(100)
	h.Observe(3)
	first := r.Snapshot()

	c.Add(2)
	g.Set(40)
	h.Observe(30)
	second := r.Snapshot()

	d := second.DeltaFrom(first)
	if v, _ := d.Value("c_total"); v != 2 {
		t.Errorf("counter delta = %d, want 2", v)
	}
	if v, _ := d.Value("g"); v != 40 {
		t.Errorf("gauge in delta = %d, want instantaneous 40", v)
	}
	count, _, buckets, _ := d.HistogramValue("h")
	if count != 1 || buckets[0] != 0 || buckets[1] != 1 {
		t.Errorf("histogram delta count=%d buckets=%v, want 1 sample in +Inf", count, buckets)
	}
}

func TestRecorderFiresOnInterval(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "counter")
	r.Seal()
	rec := NewRecorder(10, r.Snapshot)
	for i := 0; i < 35; i++ {
		c.Inc()
		rec.Tick()
	}
	series := rec.Series()
	if len(series.Snaps) != 3 {
		t.Fatalf("got %d interval snapshots for 35 ticks at interval 10, want 3", len(series.Snaps))
	}
	for i, s := range series.Snaps {
		if want := uint64(10 * (i + 1)); s.Clock != want {
			t.Errorf("snap[%d].Clock = %d, want %d", i, s.Clock, want)
		}
		if v, _ := s.Value("c_total"); v != 10 {
			t.Errorf("snap[%d] counter delta = %d, want 10", i, v)
		}
	}

	if rec := NewRecorder(0, r.Snapshot); rec != nil {
		t.Error("NewRecorder(0, ...) should be nil")
	}
	var nilRec *Recorder
	nilRec.Tick() // must not panic
	if got := nilRec.Series(); len(got.Snaps) != 0 {
		t.Error("nil recorder series should be empty")
	}
}

func testKey(srcIP uint32) flowkey.Key {
	return flowkey.Key{Gran: flowkey.GranFlow, Tuple: flowkey.FiveTuple{
		SrcIP: srcIP, DstIP: 10, SrcPort: 1000, DstPort: 80, Proto: 6,
	}}
}

func TestFlowTracerSamplingAndRing(t *testing.T) {
	tr := NewFlowTracer(64, 8)
	if tr.Sampled(1) {
		t.Error("hash 1 should not be sampled at 1-in-64")
	}
	if !tr.Sampled(0) || !tr.Sampled(64) {
		t.Error("hashes ≡ 0 (mod 64) should be sampled")
	}
	var nilTr *FlowTracer
	if nilTr.Sampled(0) {
		t.Error("nil tracer samples nothing")
	}
	nilTr.Record(EvAdmit, testKey(1), 0, 0, 0) // must not panic

	// Overfill the 8-slot ring; the retained window is the newest 8.
	for i := 0; i < 12; i++ {
		tr.Record(EvCellAppend, testKey(uint32(i)), uint64(i), 0, 1)
	}
	evs := tr.Events()
	if len(evs) != 8 {
		t.Fatalf("ring retained %d events, want 8", len(evs))
	}
	for i, e := range evs {
		if want := uint64(4 + i); e.Seq != want {
			t.Errorf("event[%d].Seq = %d, want %d (oldest-first)", i, e.Seq, want)
		}
	}
}

func TestTimelineReconstruction(t *testing.T) {
	a, b := testKey(1), testKey(2)
	// Interleave two flows across two shard tracers, as CG-hash
	// sharding would: all of one flow's events on one tracer.
	t1 := NewFlowTracer(1, 16)
	t1.Record(EvAdmit, a, 1, 0, 0)
	t1.Record(EvCellAppend, a, 2, 0, 1)
	t1.Record(EvEvict, a, 3, gpv.EvictFull, 2)
	t1.Record(EvNICMerge, a, 4, 0, 2)
	t1.Record(EvVectorEmit, a, 5, 0, 7)
	t2 := NewFlowTracer(1, 16)
	t2.Record(EvAdmit, b, 1, 0, 0)
	t2.Record(EvEvict, b, 2, gpv.EvictFlush, 1)

	tls := Timelines(t1, t2)
	if len(tls) != 2 {
		t.Fatalf("got %d timelines, want 2", len(tls))
	}
	if tls[0].Key != a || tls[1].Key != b {
		t.Fatalf("timelines not sorted by key: %v, %v", tls[0].Key, tls[1].Key)
	}
	if !tls[0].Complete() {
		t.Error("flow a has admit→evict→emit and should be complete")
	}
	if tls[1].Complete() {
		t.Error("flow b never emitted and should be incomplete")
	}
	kinds := make([]EventKind, 0, len(tls[0].Events))
	for _, e := range tls[0].Events {
		kinds = append(kinds, e.Kind)
	}
	want := []EventKind{EvAdmit, EvCellAppend, EvEvict, EvNICMerge, EvVectorEmit}
	for i, k := range want {
		if kinds[i] != k {
			t.Fatalf("timeline order = %v, want %v", kinds, want)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sf_evictions_total", "evictions", L("reason", "full"))
	h := r.Histogram("sf_cells", "cells per msg", []int64{1, 2})
	r.Seal()
	c.Add(3)
	h.Observe(1)
	h.Observe(2)
	h.Observe(9)

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		"# TYPE sf_evictions_total counter\n",
		`sf_evictions_total{reason="full"} 3` + "\n",
		"# TYPE sf_cells histogram\n",
		`sf_cells_bucket{le="1"} 1` + "\n",
		`sf_cells_bucket{le="2"} 2` + "\n",
		`sf_cells_bucket{le="+Inf"} 3` + "\n", // cumulative
		"sf_cells_sum 12\n",
		"sf_cells_count 3\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q in:\n%s", want, got)
		}
	}
}

func TestPipelineDisabled(t *testing.T) {
	if p := NewPipeline(Options{}); p != nil {
		t.Fatal("disabled options must yield a nil pipeline")
	}
	o := DefaultOptions()
	o.Enabled = true
	p := NewPipeline(o)
	if p == nil || p.Registry == nil || p.Switch == nil || p.NIC == nil {
		t.Fatal("enabled pipeline missing components")
	}
	// All shards must share one schema: two pipelines from the same
	// options have slot-identical registries.
	q := NewPipeline(o)
	pd, qd := p.Registry.Defs(), q.Registry.Defs()
	if len(pd) != len(qd) {
		t.Fatalf("schema mismatch: %d vs %d series", len(pd), len(qd))
	}
	for i := range pd {
		if pd[i].Name != qd[i].Name || pd[i].Slot != qd[i].Slot {
			t.Errorf("series %d differs: %v vs %v", i, pd[i], qd[i])
		}
	}
	// Eviction labels come from the shared enum renderer.
	for reason := 0; reason < 4; reason++ {
		want := gpv.EvictReason(reason).String()
		found := false
		for _, d := range pd {
			if d.Name == "superfe_switch_evictions_total" && len(d.Labels) == 1 && d.Labels[0].Value == want {
				found = true
			}
		}
		if !found {
			t.Errorf("no eviction series labelled %q", want)
		}
	}
}

func TestSnapshotTagged(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("svc_pkts_total", "packets", L("shard", "0"))
	g := r.Gauge("svc_depth", "queue depth")
	r.Seal()
	c.Add(7)
	g.Set(3)
	snap := r.Snapshot()
	tagged := snap.Tagged("tenant", "alpha")
	// The tenant label is prepended; existing labels survive behind it.
	if v, ok := tagged.Value("svc_pkts_total", "alpha", "0"); !ok || v != 7 {
		t.Errorf("tagged counter = %d, %v", v, ok)
	}
	if v, ok := tagged.Value("svc_depth", "alpha"); !ok || v != 3 {
		t.Errorf("tagged gauge = %d, %v", v, ok)
	}
	// The original snapshot (and the registry defs it shares) are
	// untouched.
	if v, ok := snap.Value("svc_pkts_total", "0"); !ok || v != 7 {
		t.Errorf("original snapshot mutated: %d, %v", v, ok)
	}
	if len(snap.Defs[0].Labels) != 1 {
		t.Errorf("registry defs mutated: %v", snap.Defs[0].Labels)
	}
}
