package obs

import (
	"fmt"
	"sync/atomic"
)

// Snapshot is one point-in-time (or, after DeltaFrom, one interval's)
// view of a registry's values. Defs are shared with the registry;
// Vals is an owned copy read with atomic loads, so capturing while
// shards are running is safe and lock-free.
type Snapshot struct {
	// Clock is the logical time of the capture, in packets processed
	// by the engine that owns the recorder (0 for ad-hoc scrapes).
	Clock uint64
	Defs  []SeriesDef
	Vals  []uint64
}

// Snapshot captures the registry's current values lock-free.
//
//superfe:coldpath
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{Defs: r.defs, Vals: make([]uint64, len(r.vals))}
	for i := range r.vals {
		s.Vals[i] = atomic.LoadUint64(&r.vals[i])
	}
	return s
}

// MergeSnapshots sums per-shard snapshots with identical schemas
// (every shard registers the same series in the same order, so the
// flat arrays line up). Counters and histogram slots sum into shard
// totals; gauges sum too — the sum-at-snapshot semantics of per-shard
// occupancy gauges, where the merged value is the whole deployment's
// occupancy.
func MergeSnapshots(snaps ...*Snapshot) *Snapshot {
	if len(snaps) == 0 {
		return &Snapshot{}
	}
	out := &Snapshot{Clock: snaps[0].Clock, Defs: snaps[0].Defs, Vals: make([]uint64, len(snaps[0].Vals))}
	for _, s := range snaps {
		if len(s.Vals) != len(out.Vals) {
			panic(fmt.Sprintf("superfe: obs: merging snapshots with mismatched schemas (%d vs %d slots)", len(s.Vals), len(out.Vals)))
		}
		for i, v := range s.Vals {
			out.Vals[i] += v
		}
	}
	return out
}

// Append concatenates another snapshot's series onto s (used to stack
// the engine-level registry after the merged shard registries).
func (s *Snapshot) Append(o *Snapshot) {
	base := len(s.Vals)
	for _, d := range o.Defs {
		d.Slot += base
		s.Defs = append(s.Defs, d)
	}
	s.Vals = append(s.Vals, o.Vals...)
}

// Tagged returns a copy of the snapshot with the given label
// prepended to every series — how a multi-tenant deployment scopes
// each tenant's merged registry before exposition, so one scrape
// surface can carry many tenants without series collisions. Defs are
// copied (the originals are shared with the registry); Vals are
// shared with s, which is safe because snapshots are immutable once
// captured.
func (s *Snapshot) Tagged(name, value string) *Snapshot {
	out := &Snapshot{Clock: s.Clock, Defs: make([]SeriesDef, len(s.Defs)), Vals: s.Vals}
	for i, d := range s.Defs {
		labels := make([]LabelPair, 0, len(d.Labels)+1)
		labels = append(labels, L(name, value))
		labels = append(labels, d.Labels...)
		d.Labels = labels
		out.Defs[i] = d
	}
	return out
}

// DeltaFrom returns the interval view between prev and s: counter and
// histogram slots are differenced (monotonic, so the delta is the
// interval's activity); gauge slots keep s's instantaneous value.
func (s *Snapshot) DeltaFrom(prev *Snapshot) *Snapshot {
	out := &Snapshot{Clock: s.Clock, Defs: s.Defs, Vals: make([]uint64, len(s.Vals))}
	copy(out.Vals, s.Vals)
	if prev == nil {
		return out
	}
	if len(prev.Vals) != len(s.Vals) {
		panic("superfe: obs: delta between snapshots with mismatched schemas")
	}
	for _, d := range s.Defs {
		if d.Kind == KindGauge {
			continue
		}
		for i, n := 0, d.slots(); i < n; i++ {
			out.Vals[d.Slot+i] -= prev.Vals[d.Slot+i]
		}
	}
	return out
}

// Value returns the scalar value of the named series with exactly the
// given label values (order-sensitive, matching registration), and
// whether it was found. Histograms return their sample count.
func (s *Snapshot) Value(name string, labelValues ...string) (uint64, bool) {
	for i := range s.Defs {
		d := &s.Defs[i]
		if d.Name != name || len(d.Labels) != len(labelValues) {
			continue
		}
		match := true
		for j, lv := range labelValues {
			if d.Labels[j].Value != lv {
				match = false
				break
			}
		}
		if match {
			return s.Vals[d.Slot], true
		}
	}
	return 0, false
}

// HistogramValue returns the count, sum and per-bucket counters of
// the named histogram series (the last bucket is +Inf overflow).
func (s *Snapshot) HistogramValue(name string, labelValues ...string) (count uint64, sum int64, buckets []uint64, ok bool) {
	for i := range s.Defs {
		d := &s.Defs[i]
		if d.Name != name || d.Kind != KindHistogram || len(d.Labels) != len(labelValues) {
			continue
		}
		match := true
		for j, lv := range labelValues {
			if d.Labels[j].Value != lv {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		count = s.Vals[d.Slot]
		sum = int64(s.Vals[d.Slot+1])
		buckets = s.Vals[d.Slot+histHdrSlots : d.Slot+d.slots()]
		return count, sum, buckets, true
	}
	return 0, 0, nil, false
}

// Series is the accumulated interval time-series: one delta Snapshot
// per logical-clock interval, in clock order.
type Series struct {
	// Interval is the snapshot period in packets.
	Interval uint64
	// Snaps holds the interval deltas (counters/histograms are the
	// interval's activity, gauges the end-of-interval value).
	Snaps []*Snapshot
}

// Recorder drives logical-clock snapshots: Tick once per packet from
// the engine's router; every Interval ticks it calls capture — which
// the owning engine points at a (possibly barrier-quiesced) merged
// scrape — and appends the delta to the series. The tick itself is
// two integer ops, hot-path clean.
type Recorder struct {
	interval uint64
	// left counts down to the next fire: a decrement and a zero test
	// per Tick instead of a modulo by the (variable) interval — the
	// divide was measurable in the obs-overhead gate.
	left    uint64
	n       uint64
	capture func() *Snapshot
	prev    *Snapshot
	series  Series
}

// NewRecorder returns a recorder snapshotting every interval packets
// via capture. A nil recorder is safe to Tick.
func NewRecorder(interval uint64, capture func() *Snapshot) *Recorder {
	if interval == 0 || capture == nil {
		return nil
	}
	return &Recorder{interval: interval, left: interval, capture: capture, series: Series{Interval: interval}}
}

// Tick advances the logical clock by one packet.
//
//superfe:hotpath
func (rec *Recorder) Tick() {
	if rec == nil {
		return
	}
	rec.n++
	rec.left--
	if rec.left == 0 {
		rec.left = rec.interval
		rec.fire()
	}
}

// fire captures one interval snapshot. Amortized: runs once per
// Interval packets.
//
//superfe:coldpath
func (rec *Recorder) fire() {
	snap := rec.capture()
	snap.Clock = rec.n
	rec.series.Snaps = append(rec.series.Snaps, snap.DeltaFrom(rec.prev))
	rec.prev = snap
}

// Series returns the recorded interval series.
func (rec *Recorder) Series() *Series {
	if rec == nil {
		return &Series{}
	}
	return &rec.series
}

// Clock returns the number of ticks seen.
func (rec *Recorder) Clock() uint64 {
	if rec == nil {
		return 0
	}
	return rec.n
}
