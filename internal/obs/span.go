package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// BatchSpan is one columnar batch's trace through the parallel
// pipeline: router fill, ring enqueue (with backpressure evidence),
// the shard's switch ProcessColumns pass and the NIC
// reconstruct/merge/emit work it caused. Batches are sampled 1-in-K
// by the CG hash of their first row — the hash is already carried in
// the columns, so sampling costs one mask test per batch — and the
// selected batch's span rides inside the batch itself: the router
// fills the ingress half, the shard completes the extraction half and
// records the finished span into its fixed ring.
//
// Clock domains: FillStart/FillEnd are the router's logical clock
// (packets routed so far). The stage deltas are differences of the
// shard's own switch/NIC counters around the batch.
type BatchSpan struct {
	// Sampled marks a live span; the router sets it when the batch's
	// first row wins the hash lottery. Cleared by Columns.Reset.
	Sampled bool
	// Shard and Batch identify the span: Batch is the shard's dispatch
	// ordinal (1-based), so (Shard, Batch) totally orders spans.
	Shard int32
	Batch uint64
	// Rows is the batch fill at dispatch; Hash the first-row CG hash
	// that selected it.
	Rows int32
	Hash uint32

	// FillStart/FillEnd bracket the router fill (packets routed when
	// the first row landed / when the batch was dispatched).
	FillStart uint64
	FillEnd   uint64

	// Enqueue evidence, gathered producer-side just before the batch
	// is published (the span rides inside the batch, so nothing may be
	// written after the hand-off): in-ring occupancy counting this
	// batch, producer park episodes the push cost, and whether the
	// consumer was parked at publish time (the publish is then what
	// wakes it). These depend on scheduling and are the span's only
	// nondeterministic fields.
	EnqueueOcc   int32
	ProdParks    uint32
	WokeConsumer bool

	// Switch deltas across ProcessColumns.
	SwPktsIn    uint32
	SwFiltered  uint32
	SwCellsOut  uint32
	SwMsgsOut   uint32
	SwEvictions uint32
	SwShed      uint32

	// NIC deltas across the same window (the switch delivers evicted
	// MGPVs synchronously, so the NIC work the batch caused lands
	// inside it).
	NICMsgs      uint32
	NICMGPVs     uint32
	NICCells     uint32
	NICVectors   uint32
	NICEMEMDrops uint32
}

// SpanRing is one shard's fixed ring of completed batch spans.
// Single-writer (the shard goroutine records, overwriting the oldest
// when full); readers must run at a quiescence point — the same
// contract as FlowTracer.
type SpanRing struct {
	mask uint32 // sample when hash&mask == 0
	ring []BatchSpan
	seq  uint64
}

// NewSpanRing samples 1-in-sampleEvery batches (rounded up to a power
// of two) into a ring of ringSize spans (likewise rounded).
// sampleEvery <= 0 returns nil: a nil ring is safe, samples nothing
// and records nothing.
func NewSpanRing(sampleEvery, ringSize int) *SpanRing {
	if sampleEvery <= 0 {
		return nil
	}
	if ringSize <= 0 {
		ringSize = 1024
	}
	return &SpanRing{
		mask: uint32(ceilPow2(sampleEvery) - 1),
		ring: make([]BatchSpan, ceilPow2(ringSize)),
	}
}

// Sampled reports whether a batch whose first row carries the given
// CG hash is traced. Deterministic: purely a function of the hash.
//
//superfe:hotpath
func (r *SpanRing) Sampled(hash uint32) bool {
	return r != nil && hash&r.mask == 0
}

// Record stores one completed span, overwriting the oldest when the
// ring is full. An indexed write — no allocation.
//
//superfe:hotpath
func (r *SpanRing) Record(s BatchSpan) {
	if r == nil {
		return
	}
	r.ring[r.seq&uint64(len(r.ring)-1)] = s
	r.seq++
}

// Spans returns the retained spans in recording order (oldest first).
// Quiescent-read only.
func (r *SpanRing) Spans() []BatchSpan {
	if r == nil {
		return nil
	}
	n := r.seq
	if n > uint64(len(r.ring)) {
		n = uint64(len(r.ring))
	}
	out := make([]BatchSpan, 0, n)
	for s := r.seq - n; s < r.seq; s++ {
		out = append(out, r.ring[s&uint64(len(r.ring)-1)])
	}
	return out
}

// MergeSpans collects the retained spans of several shard rings,
// sorted by (Shard, Batch) for deterministic rendering.
func MergeSpans(rings ...*SpanRing) []BatchSpan {
	var all []BatchSpan
	for _, r := range rings {
		all = append(all, r.Spans()...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Shard != all[j].Shard {
			return all[i].Shard < all[j].Shard
		}
		return all[i].Batch < all[j].Batch
	})
	return all
}

// jsonSpan is the exposition form of one span.
type jsonSpan struct {
	Shard        int32  `json:"shard"`
	Batch        uint64 `json:"batch"`
	Rows         int32  `json:"rows"`
	Hash         uint32 `json:"hash"`
	FillStart    uint64 `json:"fill_start"`
	FillEnd      uint64 `json:"fill_end"`
	EnqueueOcc   int32  `json:"enqueue_occ"`
	ProdParks    uint32 `json:"prod_parks"`
	WokeConsumer bool   `json:"woke_consumer"`
	SwPktsIn     uint32 `json:"sw_pkts_in"`
	SwFiltered   uint32 `json:"sw_filtered"`
	SwCellsOut   uint32 `json:"sw_cells_out"`
	SwMsgsOut    uint32 `json:"sw_msgs_out"`
	SwEvictions  uint32 `json:"sw_evictions"`
	SwShed       uint32 `json:"sw_shed"`
	NICMsgs      uint32 `json:"nic_msgs"`
	NICMGPVs     uint32 `json:"nic_mgpvs"`
	NICCells     uint32 `json:"nic_cells"`
	NICVectors   uint32 `json:"nic_vectors"`
	NICEMEMDrops uint32 `json:"nic_emem_drops"`
}

// WriteSpansJSON renders spans (use MergeSpans for the deterministic
// order) as indented JSON.
func WriteSpansJSON(w io.Writer, spans []BatchSpan) error {
	out := make([]jsonSpan, 0, len(spans))
	for i := range spans {
		s := &spans[i]
		out = append(out, jsonSpan{
			Shard: s.Shard, Batch: s.Batch, Rows: s.Rows, Hash: s.Hash,
			FillStart: s.FillStart, FillEnd: s.FillEnd,
			EnqueueOcc: s.EnqueueOcc, ProdParks: s.ProdParks, WokeConsumer: s.WokeConsumer,
			SwPktsIn: s.SwPktsIn, SwFiltered: s.SwFiltered, SwCellsOut: s.SwCellsOut,
			SwMsgsOut: s.SwMsgsOut, SwEvictions: s.SwEvictions, SwShed: s.SwShed,
			NICMsgs: s.NICMsgs, NICMGPVs: s.NICMGPVs, NICCells: s.NICCells,
			NICVectors: s.NICVectors, NICEMEMDrops: s.NICEMEMDrops,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// NormalizeSpans zeroes the scheduling-dependent fields (enqueue
// occupancy, producer parks, consumer wake) in place, leaving only
// the deterministic ones — what the golden tests and cross-run diffs
// compare.
func NormalizeSpans(spans []BatchSpan) {
	for i := range spans {
		spans[i].EnqueueOcc = 0
		spans[i].ProdParks = 0
		spans[i].WokeConsumer = false
	}
}
