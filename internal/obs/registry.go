package obs

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Kind distinguishes the three metric types. The distinction matters
// twice: Prometheus TYPE lines, and snapshot semantics — counters and
// histogram slots are monotonic and diffed into interval deltas,
// gauges are instantaneous and carried through as-is (summed across
// shards at snapshot time).
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind as Prometheus TYPE lines do.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// LabelPair is one label on a series. Label values are fixed at
// registration — the registry has no dynamic label lookup, which is
// what keeps the update path free of maps and allocation.
type LabelPair struct {
	Name  string
	Value string
}

// L is shorthand for constructing a LabelPair.
func L(name, value string) LabelPair { return LabelPair{Name: name, Value: value} }

// SeriesDef is the exposition metadata of one registered series.
// Slot indexes the registry's flat value array; histograms occupy
// len(Edges)+3 consecutive slots (count, sum, buckets..., +Inf
// bucket).
type SeriesDef struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []LabelPair
	Slot   int
	Edges  []int64 // histogram bucket upper bounds (inclusive); nil otherwise
}

func (d *SeriesDef) slots() int {
	if d.Kind == KindHistogram {
		return histHdrSlots + len(d.Edges) + 1
	}
	return 1
}

// Histogram slot layout: vals[slot] = sample count, vals[slot+1] =
// sum (int64 bits), vals[slot+2...] = bucket counters.
const histHdrSlots = 2

// Registry is one shard's metric store: every series registered up
// front, all values in one flat array updated with atomic adds, so a
// scrape from another goroutine is lock-free and the update path is
// allocation-free. Registration must complete before the first update
// or scrape; Seal enforces that in tests.
type Registry struct {
	defs   []SeriesDef
	vals   []uint64
	sealed bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Seal freezes registration. Further Counter/Gauge/Histogram calls
// panic — catching the "registered a metric mid-run" bug that would
// invalidate outstanding handles when the value array grows.
func (r *Registry) Seal() { r.sealed = true }

func (r *Registry) register(name, help string, kind Kind, edges []int64, labels []LabelPair) int {
	if r.sealed {
		panic("superfe: obs: registration after Seal (register all metrics before the pipeline starts)")
	}
	def := SeriesDef{Name: name, Help: help, Kind: kind, Labels: labels, Slot: len(r.vals), Edges: edges}
	r.defs = append(r.defs, def)
	for i := 0; i < def.slots(); i++ {
		//superfe:atomic-ok registration is single-threaded and precedes publication; Seal() panics on mid-run registration so the array never grows under concurrent handles
		r.vals = append(r.vals, 0)
	}
	return def.Slot
}

// Counter registers a monotonic counter series.
func (r *Registry) Counter(name, help string, labels ...LabelPair) Counter {
	return Counter{r: r, slot: r.register(name, help, KindCounter, nil, labels)}
}

// Gauge registers an instantaneous gauge series. Per-shard gauges
// (occupancy, live groups) are summed across shards at snapshot time;
// within one shard the semantics are last-write.
func (r *Registry) Gauge(name, help string, labels ...LabelPair) Gauge {
	return Gauge{r: r, slot: r.register(name, help, KindGauge, nil, labels)}
}

// Histogram registers a histogram with the given inclusive bucket
// upper bounds (ascending); samples above the last edge land in an
// implicit +Inf bucket.
func (r *Registry) Histogram(name, help string, edges []int64, labels ...LabelPair) Histogram {
	if len(edges) == 0 {
		panic("superfe: obs: histogram needs at least one bucket edge")
	}
	if !sort.SliceIsSorted(edges, func(i, j int) bool { return edges[i] < edges[j] }) {
		panic("superfe: obs: histogram edges must be ascending")
	}
	return Histogram{r: r, slot: r.register(name, help, KindHistogram, edges, labels), edges: edges}
}

// Defs returns the registered series in registration order.
func (r *Registry) Defs() []SeriesDef { return r.defs }

// Counter is a handle to one monotonic series. The zero value is a
// no-op, so engines can keep handles unconditionally.
type Counter struct {
	r    *Registry
	slot int
}

// Inc adds one.
//
//superfe:hotpath
func (c Counter) Inc() {
	if c.r != nil {
		atomic.AddUint64(&c.r.vals[c.slot], 1)
	}
}

// Add adds n.
//
//superfe:hotpath
func (c Counter) Add(n uint64) {
	if c.r != nil {
		atomic.AddUint64(&c.r.vals[c.slot], n)
	}
}

// Gauge is a handle to one instantaneous series (int64 semantics).
// The zero value is a no-op.
type Gauge struct {
	r    *Registry
	slot int
}

// Set stores v (last-write-wins within the owning shard).
//
//superfe:hotpath
func (g Gauge) Set(v int64) {
	if g.r != nil {
		atomic.StoreUint64(&g.r.vals[g.slot], uint64(v))
	}
}

// Add adds delta (may be negative).
//
//superfe:hotpath
func (g Gauge) Add(delta int64) {
	if g.r != nil {
		// Two's-complement addition: correct for int64 deltas on the
		// uint64 slot.
		atomic.AddUint64(&g.r.vals[g.slot], uint64(delta))
	}
}

// Histogram is a handle to one distribution series. The zero value is
// a no-op.
type Histogram struct {
	r     *Registry
	slot  int
	edges []int64
}

// Observe records one sample: binary search over the fixed edges,
// three atomic adds, no allocation.
//
//superfe:hotpath
func (h Histogram) Observe(x int64) {
	if h.r == nil {
		return
	}
	lo, hi := 0, len(h.edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if x <= h.edges[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	// lo == len(edges) means the +Inf overflow bucket.
	atomic.AddUint64(&h.r.vals[h.slot], 1)
	atomic.AddUint64(&h.r.vals[h.slot+1], uint64(x))
	atomic.AddUint64(&h.r.vals[h.slot+histHdrSlots+lo], 1)
}

// HistStage is a goroutine-local staging buffer for one Histogram:
// the owning goroutine Observes into plain memory (no lock-prefixed
// instructions on the per-event path) and Flush publishes the staged
// samples with one atomic add per touched slot. This is the histogram
// half of the batch-granular publishing discipline the pipeline's
// hot-path stages use to stay inside the obs-overhead budget; readers
// only ever see whole flushed batches. The zero value (from a
// zero-value Histogram) is a no-op.
type HistStage struct {
	h       Histogram
	count   uint64
	sum     uint64
	buckets []uint64
}

// Stage returns a staging buffer bound to h. One allocation at
// construction time; Observe/Flush never allocate.
func (h Histogram) Stage() HistStage {
	if h.r == nil {
		return HistStage{}
	}
	return HistStage{h: h, buckets: make([]uint64, len(h.edges)+1)}
}

// Observe stages one sample: the same binary search as
// Histogram.Observe, but three plain stores instead of three atomics.
//
//superfe:hotpath
func (st *HistStage) Observe(x int64) {
	if st.h.r == nil {
		return
	}
	lo, hi := 0, len(st.h.edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if x <= st.h.edges[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	st.count++
	st.sum += uint64(x)
	st.buckets[lo]++
}

// Flush publishes the staged samples into the registry and clears the
// stage. Called at batch boundaries by the owning goroutine.
func (st *HistStage) Flush() {
	if st.h.r == nil || st.count == 0 {
		return
	}
	h := st.h
	atomic.AddUint64(&h.r.vals[h.slot], st.count)
	atomic.AddUint64(&h.r.vals[h.slot+1], st.sum)
	for i, b := range st.buckets {
		if b != 0 {
			atomic.AddUint64(&h.r.vals[h.slot+histHdrSlots+i], b)
			st.buckets[i] = 0
		}
	}
	st.count, st.sum = 0, 0
}
