package streaming

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func approx(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return d < eps
	}
	return d/scale < eps
}

func feed(r Reducer, xs []int64) {
	for _, x := range xs {
		r.Observe(x)
	}
}

func TestSum(t *testing.T) {
	s := &Sum{}
	feed(s, []int64{1, 2, 3, -4})
	if got := s.Features()[0]; got != 2 {
		t.Errorf("sum = %g, want 2", got)
	}
	if s.Count() != 4 {
		t.Errorf("count = %d", s.Count())
	}
	s.Reset()
	if s.Features()[0] != 0 || s.Count() != 0 {
		t.Error("reset incomplete")
	}
}

func TestExtremum(t *testing.T) {
	mx, _ := New(FMax, Params{})
	mn, _ := New(FMin, Params{})
	xs := []int64{5, -3, 17, 0}
	feed(mx, xs)
	feed(mn, xs)
	if mx.Features()[0] != 17 {
		t.Errorf("max = %g", mx.Features()[0])
	}
	if mn.Features()[0] != -3 {
		t.Errorf("min = %g", mn.Features()[0])
	}
	// Empty reducers emit 0.
	e := &Extremum{max: true}
	if e.Features()[0] != 0 {
		t.Error("empty extremum should be 0")
	}
}

func TestWelfordAgainstNaive(t *testing.T) {
	f := func(xs []int64) bool {
		if len(xs) == 0 {
			return true
		}
		// Bound magnitudes to keep the naive two-pass numerically
		// comparable.
		for i := range xs {
			xs[i] %= 1 << 20
		}
		w := &Welford{emit: FVar}
		n := NewNaive(FVar, Params{})
		feed(w, xs)
		feed(n, xs)
		return approx(w.Features()[0], n.Features()[0], 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelfordKnown(t *testing.T) {
	w := &Welford{}
	feed(w, []int64{2, 4, 4, 4, 5, 5, 7, 9})
	if !approx(w.Mean(), 5, tol) {
		t.Errorf("mean = %g, want 5", w.Mean())
	}
	if !approx(w.Var(), 4, tol) {
		t.Errorf("var = %g, want 4", w.Var())
	}
	std := &Welford{emit: FStd}
	feed(std, []int64{2, 4, 4, 4, 5, 5, 7, 9})
	if !approx(std.Features()[0], 2, tol) {
		t.Errorf("std = %g, want 2", std.Features()[0])
	}
}

func TestMomentsAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	xs := make([]int64, 500)
	for i := range xs {
		// Skewed distribution: squared normal.
		v := r.NormFloat64()
		xs[i] = int64(v * v * 1000)
	}
	for _, emit := range []Func{FSkew, FKurtosis} {
		m := &Moments{emit: emit}
		n := NewNaive(emit, Params{})
		feed(m, xs)
		feed(n, xs)
		if !approx(m.Features()[0], n.Features()[0], 1e-6) {
			t.Errorf("%s: streaming %g vs naive %g", emit, m.Features()[0], n.Features()[0])
		}
	}
}

func TestMomentsDegenerate(t *testing.T) {
	m := &Moments{emit: FSkew}
	m.Observe(5)
	if m.Features()[0] != 0 {
		t.Error("single-sample skew must be 0")
	}
	m2 := &Moments{emit: FKurtosis}
	feed(m2, []int64{3, 3, 3, 3})
	if m2.Features()[0] != 0 {
		t.Error("constant-stream kurtosis must be 0 (zero variance guard)")
	}
}

func TestHyperLogLogAccuracy(t *testing.T) {
	h, err := NewHyperLogLog(8) // 256 buckets → ~6.5% standard error
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	seen := map[int64]struct{}{}
	for len(seen) < 10000 {
		x := int64(r.Uint64() >> 8)
		seen[x] = struct{}{}
		h.Observe(x)
	}
	// Duplicates must not change the estimate.
	for x := range seen {
		h.Observe(x)
		break
	}
	est := h.Estimate()
	if est < 8000 || est > 12000 {
		t.Errorf("HLL estimate %g for 10000 distinct (>20%% off)", est)
	}
}

func TestHyperLogLogSmallRange(t *testing.T) {
	h, _ := NewHyperLogLog(6)
	for i := int64(0); i < 10; i++ {
		h.Observe(i)
	}
	est := h.Estimate()
	if est < 5 || est > 20 {
		t.Errorf("linear-counting estimate %g for 10 distinct", est)
	}
}

func TestHyperLogLogParamValidation(t *testing.T) {
	if _, err := NewHyperLogLog(1); err == nil {
		t.Error("bits=1 accepted")
	}
	if _, err := NewHyperLogLog(17); err == nil {
		t.Error("bits=17 accepted")
	}
}

func TestHyperLogLogHashReuse(t *testing.T) {
	// ObserveHash with the same hash values must equal Observe.
	h1, _ := NewHyperLogLog(6)
	h2, _ := NewHyperLogLog(6)
	for i := int64(0); i < 1000; i++ {
		h1.Observe(i)
		h2.ObserveHash(hash32(i))
	}
	if h1.Estimate() != h2.Estimate() {
		t.Error("ObserveHash diverges from Observe")
	}
}

func TestHistogramBinning(t *testing.T) {
	h := &Histogram{emit: FHist, width: 10, bins: make([]uint32, 4)}
	for _, x := range []int64{0, 9, 10, 25, 39, 40, 1000, -5} {
		h.Observe(x)
	}
	want := []float64{3, 1, 1, 3} // -5,0,9 | 10 | 25 | 39,40(clamp),1000(clamp)
	got := h.Features()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hist = %v, want %v", got, want)
		}
	}
}

func TestHistogramPDFandCDF(t *testing.T) {
	pdf := &Histogram{emit: FPDF, width: 10, bins: make([]uint32, 4)}
	cdf := &Histogram{emit: FCDF, width: 10, bins: make([]uint32, 4)}
	xs := []int64{5, 15, 15, 35}
	feed(pdf, xs)
	feed(cdf, xs)
	p := pdf.Features()
	if !approx(p[0], 0.25, tol) || !approx(p[1], 0.5, tol) || !approx(p[3], 0.25, tol) {
		t.Errorf("pdf = %v", p)
	}
	c := cdf.Features()
	if !approx(c[3], 1.0, tol) {
		t.Errorf("cdf must end at 1: %v", c)
	}
	for i := 1; i < len(c); i++ {
		if c[i] < c[i-1] {
			t.Errorf("cdf not monotone: %v", c)
		}
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	h := &Histogram{emit: FPercent, width: 100, bins: make([]uint32, 16), quantile: 0.5}
	// Uniform 0..999: median ≈ 500.
	for i := int64(0); i < 1000; i++ {
		h.Observe(i)
	}
	med := h.Quantile(0.5)
	if med < 450 || med > 550 {
		t.Errorf("median = %g, want ≈500", med)
	}
	// Empty histogram.
	e := &Histogram{width: 10, bins: make([]uint32, 4)}
	if e.Quantile(0.5) != 0 {
		t.Error("empty quantile must be 0")
	}
}

func TestHistogramQuantileVsExact(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	h := &Histogram{emit: FPercent, width: 16, bins: make([]uint32, 128), quantile: 0.9}
	n := NewNaive(FPercent, Params{BinWidth: 16, Bins: 128, Quantile: 0.9})
	for i := 0; i < 5000; i++ {
		x := int64(r.ExpFloat64() * 300)
		h.Observe(x)
		n.Observe(x)
	}
	exact := n.ExactQuantile(0.9)
	got := h.Quantile(0.9)
	if math.Abs(got-exact)/exact > 0.1 {
		t.Errorf("p90: hist %g vs exact %g", got, exact)
	}
}

func TestVariableHistogram(t *testing.T) {
	v := NewVariableHistogram(100, 2, 4) // edges 100, 300, 700, 1500
	for _, x := range []int64{50, 150, 500, 5000} {
		v.Observe(x)
	}
	got := v.Features()
	want := []float64{1, 1, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("varhist = %v, want %v", got, want)
		}
	}
	v.Reset()
	for _, c := range v.Features() {
		if c != 0 {
			t.Error("reset incomplete")
		}
	}
}

func TestArray(t *testing.T) {
	a := &Array{maxLen: 3}
	feed(a, []int64{1, -1, 1, -1})
	vals := a.Values()
	if len(vals) != 3 {
		t.Fatalf("array should cap at 3, got %d", len(vals))
	}
	feats := a.Features()
	if len(feats) != 3 || feats[0] != 1 || feats[1] != -1 {
		t.Errorf("features = %v", feats)
	}
	if a.StateBytes() != 24 {
		t.Errorf("state bytes = %d", a.StateBytes())
	}
}

func TestArrayZeroPadding(t *testing.T) {
	a := &Array{maxLen: 5}
	feed(a, []int64{7})
	feats := a.Features()
	if len(feats) != 5 || feats[0] != 7 || feats[4] != 0 {
		t.Errorf("padding wrong: %v", feats)
	}
}

func TestBidirectionalAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	xs := make([]int64, 2000)
	for i := range xs {
		v := int64(r.Intn(1000) + 100)
		if r.Intn(2) == 1 {
			v = -v
		}
		xs[i] = v
	}
	// Magnitude and radius are exact (derived from per-stream
	// Welford); cov/pcc are approximations — checked loosely.
	for _, c := range []struct {
		f   Func
		eps float64
	}{
		{FMag, 1e-9}, {FRadius, 1e-9},
	} {
		b := &Bidirectional{emit: c.f}
		n := NewNaive(c.f, Params{})
		feed(b, xs)
		feed(n, xs)
		if !approx(b.Features()[0], n.Features()[0], c.eps) {
			t.Errorf("%s: %g vs %g", c.f, b.Features()[0], n.Features()[0])
		}
	}
}

func TestBidirectionalPCCBounds(t *testing.T) {
	f := func(xs []int64) bool {
		b := &Bidirectional{emit: FPCC}
		feed(b, xs)
		p := b.Features()[0]
		return p >= -1 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBidirectionalCorrelatedStreams(t *testing.T) {
	// The last-residual incremental covariance detects correlation
	// between slowly-varying interleaved streams (half its residual
	// products pair the current sample with the previous opposite-
	// direction sample, so consecutive-sample correlation is what it
	// measures — as in Kitsune's AfterImage).
	b := &Bidirectional{emit: FPCC}
	for i := 0; i < 3000; i++ {
		v := int64(500 + 400*math.Sin(float64(i)/50))
		b.Observe(v)
		b.Observe(-(v + 5))
	}
	if p := b.PCC(); p < 0.7 {
		t.Errorf("strongly correlated streams give pcc %g", p)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(FHist, Params{}); err == nil {
		t.Error("ft_hist without params accepted")
	}
	if _, err := New(FPercent, Params{BinWidth: 10, Bins: 4}); err == nil {
		t.Error("ft_percent without quantile accepted")
	}
	if _, err := New(FPercent, Params{BinWidth: 10, Bins: 4, Quantile: 1.5}); err == nil {
		t.Error("quantile out of range accepted")
	}
	if _, err := New(FDMean, Params{}); err == nil {
		t.Error("damped function without lambda accepted")
	}
	if _, err := New(Func(200), Params{}); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestFeatureWidth(t *testing.T) {
	if FeatureWidth(FHist, Params{Bins: 16}) != 16 {
		t.Error("hist width")
	}
	if FeatureWidth(FArray, Params{MaxLen: 100}) != 100 {
		t.Error("array width")
	}
	if FeatureWidth(FArray, Params{}) != DefaultMaxArray {
		t.Error("array default width")
	}
	if FeatureWidth(FMean, Params{}) != 1 {
		t.Error("scalar width")
	}
}

func TestFuncStrings(t *testing.T) {
	// Every function in the extended set has a proper name.
	for f := Func(0); int(f) < NumFuncsTotal; f++ {
		if f == Func(NumFuncs) {
			continue // numFuncs sentinel value inside the range
		}
		name := f.String()
		if len(name) > 2 && name[:2] == "f(" {
			t.Errorf("func %d has fallback name %q", f, name)
		}
	}
}

func TestAllReducersResetAndReuse(t *testing.T) {
	specs := []struct {
		f Func
		p Params
	}{
		{FSum, Params{}}, {FMean, Params{}}, {FVar, Params{}}, {FStd, Params{}},
		{FMax, Params{}}, {FMin, Params{}}, {FSkew, Params{}}, {FKurtosis, Params{}},
		{FCard, Params{}}, {FArray, Params{MaxLen: 8}},
		{FHist, Params{BinWidth: 10, Bins: 4}}, {FPDF, Params{BinWidth: 10, Bins: 4}},
		{FCDF, Params{BinWidth: 10, Bins: 4}}, {FPercent, Params{BinWidth: 10, Bins: 4, Quantile: 0.5}},
		{FMag, Params{}}, {FRadius, Params{}}, {FCov, Params{}}, {FPCC, Params{}},
		{FDWeight, Params{Lambda: 1}}, {FDMean, Params{Lambda: 1}}, {FDStd, Params{Lambda: 1}},
		{FD2DMag, Params{Lambda: 1}}, {FD2DRadius, Params{Lambda: 1}},
		{FD2DCov, Params{Lambda: 1}}, {FD2DPCC, Params{Lambda: 1}},
	}
	for _, s := range specs {
		r, err := New(s.f, s.p)
		if err != nil {
			t.Fatalf("New(%s): %v", s.f, err)
		}
		// Observe, reset, observe the same stream: features must match
		// a fresh run.
		xs := []int64{5, -3, 12, 7, -9, 4, 4, 20}
		feedTimed(r, xs)
		first := append([]float64(nil), r.Features()...)
		r.Reset()
		feedTimed(r, xs)
		second := r.Features()
		for i := range first {
			if !approx(first[i], second[i], 1e-9) && !(math.IsNaN(first[i]) && math.IsNaN(second[i])) {
				t.Errorf("%s: reset changes results: %v vs %v", s.f, first, second)
				break
			}
		}
		if r.StateBytes() < 0 {
			t.Errorf("%s: negative state bytes", s.f)
		}
	}
}

func feedTimed(r Reducer, xs []int64) {
	ts := int64(0)
	for _, x := range xs {
		if tr, ok := r.(TimedReducer); ok {
			tr.ObserveAt(x, ts)
		} else {
			r.Observe(x)
		}
		ts += 1e6
	}
}
