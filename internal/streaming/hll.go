package streaming

import (
	"fmt"
	"math"
	"math/bits"
)

// HyperLogLog implements f_card (§6.1 "Cardinality"): the number of
// distinct elements in a group, estimated with the HyperLogLog sketch
// of Flajolet et al. As in the paper, a 32-bit hash of each sample is
// split: the first k bits index a bucket, the remaining 32-k bits are
// scanned for leading zeros; each bucket keeps the maximum
// leading-zero run (+1), and the harmonic mean of the buckets yields
// the estimate. All per-packet operations are shifts and compares —
// no division — matching the SmartNIC constraint.
type HyperLogLog struct {
	bits    int
	buckets []uint8
}

// NewHyperLogLog creates a sketch with 2^b buckets. b must be in
// [2, 16].
func NewHyperLogLog(b int) (*HyperLogLog, error) {
	if b < 2 || b > 16 {
		return nil, fmt.Errorf("streaming: HyperLogLog bits must be in [2,16], got %d", b)
	}
	return &HyperLogLog{bits: b, buckets: make([]uint8, 1<<b)}, nil
}

// hash32 mixes the sample into a well-distributed 32-bit value
// (finalizer of MurmurHash3, which a Tofino CRC polynomial or NFP
// hash unit would provide in hardware).
func hash32(x int64) uint32 {
	h := uint64(x)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return uint32(h)
}

// Observe folds one sample into the sketch.
func (h *HyperLogLog) Observe(x int64) {
	v := hash32(x)
	idx := v >> (32 - h.bits)
	rest := v << h.bits // remaining 32-k bits, left aligned
	// Leading-zero run among the remaining bits, +1, capped.
	rho := uint8(bits.LeadingZeros32(rest|1)) + 1
	if rho > h.buckets[idx] {
		h.buckets[idx] = rho
	}
}

// ObserveHash folds a precomputed 32-bit hash (the switch-provided
// hash reuse optimization of §6.2) into the sketch.
func (h *HyperLogLog) ObserveHash(v uint32) {
	idx := v >> (32 - h.bits)
	rest := v << h.bits
	rho := uint8(bits.LeadingZeros32(rest|1)) + 1
	if rho > h.buckets[idx] {
		h.buckets[idx] = rho
	}
}

// Estimate returns the cardinality estimate with the standard
// HyperLogLog bias correction, including the small-range (linear
// counting) correction.
func (h *HyperLogLog) Estimate() float64 {
	m := float64(len(h.buckets))
	var sum float64
	zeros := 0
	for _, b := range h.buckets {
		sum += 1 / float64(uint64(1)<<b)
		if b == 0 {
			zeros++
		}
	}
	alpha := alphaFor(len(h.buckets))
	e := alpha * m * m / sum
	if e <= 2.5*m && zeros > 0 {
		// Linear counting for small cardinalities.
		e = m * math.Log(m/float64(zeros))
	}
	return e
}

func alphaFor(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// Merge folds another sketch into h (set-union semantics): bucketwise
// maximum, which makes Merge commutative, associative and idempotent
// — the invariants DeterministicMerge relies on when shard-local
// sketches are combined. Both sketches must share the bucket count.
func (h *HyperLogLog) Merge(o *HyperLogLog) error {
	if len(h.buckets) != len(o.buckets) {
		return fmt.Errorf("streaming: HyperLogLog merge size mismatch (%d vs %d buckets)", len(h.buckets), len(o.buckets))
	}
	for i, b := range o.buckets {
		if b > h.buckets[i] {
			h.buckets[i] = b
		}
	}
	return nil
}

// Features returns the cardinality estimate.
func (h *HyperLogLog) Features() []float64 { return []float64{h.Estimate()} }

// StateBytes reports one byte per bucket.
func (h *HyperLogLog) StateBytes() int { return len(h.buckets) }

// Reset clears all buckets.
func (h *HyperLogLog) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
}
