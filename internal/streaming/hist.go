package streaming

// Histogram implements the distribution-related reducing functions
// (§6.1 "Distribution-related features"): ft_hist is the basis; f_cdf
// is the cumulative, normalised histogram; f_pdf the normalised
// histogram; ft_percent a quantile read off the cumulative counts.
// State is one uint32 counter per bin; per-sample work is one shift
// (power-of-two widths) or one division-free scaled multiply plus one
// increment.
type Histogram struct {
	emit     Func
	width    int64
	bins     []uint32
	quantile float64
	n        uint64
}

// Observe increments the bin for the sample. Values past the last
// bin clamp into it, negative values clamp into bin 0 (samples in
// SuperFE are sizes and times, so negatives indicate direction and
// are clamped deliberately).
func (h *Histogram) Observe(x int64) {
	h.n++
	if x < 0 {
		h.bins[0]++
		return
	}
	idx := x / h.width
	if idx >= int64(len(h.bins)) {
		idx = int64(len(h.bins)) - 1
	}
	h.bins[idx]++
}

// Counts returns the raw bin counters.
func (h *Histogram) Counts() []uint32 { return h.bins }

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 { return h.n }

// Features emits, depending on the constructed mode:
//
//	ft_hist:    raw bin counts
//	f_pdf:      bin counts normalised to sum 1
//	f_cdf:      cumulative normalised counts (monotone, ends at 1)
//	ft_percent: the single value at the configured quantile
func (h *Histogram) Features() []float64 {
	switch h.emit {
	case FPDF:
		out := make([]float64, len(h.bins))
		if h.n == 0 {
			return out
		}
		for i, c := range h.bins {
			out[i] = float64(c) / float64(h.n)
		}
		return out
	case FCDF:
		out := make([]float64, len(h.bins))
		if h.n == 0 {
			return out
		}
		var cum uint64
		for i, c := range h.bins {
			cum += uint64(c)
			out[i] = float64(cum) / float64(h.n)
		}
		return out
	case FPercent:
		return []float64{h.Quantile(h.quantile)}
	default: // ft_hist
		out := make([]float64, len(h.bins))
		for i, c := range h.bins {
			out[i] = float64(c)
		}
		return out
	}
}

// Quantile returns the q-th quantile estimated from the histogram
// ("adding up those bins lower than that data", §6.1), with linear
// interpolation inside the bin that crosses the target count.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := q * float64(h.n)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i, c := range h.bins {
		next := cum + float64(c)
		if next >= target && c > 0 {
			frac := (target - cum) / float64(c)
			return float64(int64(i)*h.width) + frac*float64(h.width)
		}
		cum = next
	}
	return float64(int64(len(h.bins)) * h.width)
}

// StateBytes reports 4 bytes per bin plus the sample counter.
func (h *Histogram) StateBytes() int { return 4*len(h.bins) + 8 }

// Reset zeros all bins.
func (h *Histogram) Reset() {
	for i := range h.bins {
		h.bins[i] = 0
	}
	h.n = 0
}

// VariableHistogram implements the variable-bin-width refinement
// mentioned in §6.1 ("SuperFE also conducts variable bin width to
// improve the accuracy of features computed through the histogram"):
// bin edges grow geometrically so that fine-grained resolution is
// spent where inter-packet times and sizes actually concentrate
// (near zero) while the long tail is still covered. Edges[i] is the
// exclusive upper bound of bin i.
type VariableHistogram struct {
	edges []int64
	bins  []uint32
	n     uint64
}

// GeometricEdges returns bin upper bounds whose widths start at base
// and grow by the given integer factor per bin, e.g. base=100,
// factor=2, bins=8 yields 100, 300, 700, … — the variable-bin-width
// layout of §6.1, also reused by the telemetry histograms in
// internal/obs.
func GeometricEdges(base int64, factor int64, bins int) []int64 {
	edges := make([]int64, bins)
	width := base
	var edge int64
	for i := 0; i < bins; i++ {
		edge += width
		edges[i] = edge
		width *= factor
	}
	return edges
}

// NewVariableHistogram builds a histogram whose first bin has width
// base and whose widths grow by the given integer factor per bin,
// e.g. base=100, factor=2, bins=8 covers [0,100),[100,300),[300,700)…
func NewVariableHistogram(base int64, factor int64, bins int) *VariableHistogram {
	return &VariableHistogram{edges: GeometricEdges(base, factor, bins), bins: make([]uint32, bins)}
}

// Observe increments the bin containing the sample (binary search
// over the edges; ≤ 4 compares for 16 bins).
func (v *VariableHistogram) Observe(x int64) {
	v.n++
	lo, hi := 0, len(v.edges)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if x < v.edges[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	v.bins[lo]++
}

// Counts returns the raw bin counters.
func (v *VariableHistogram) Counts() []uint32 { return v.bins }

// Edges returns the exclusive bin upper bounds.
func (v *VariableHistogram) Edges() []int64 { return v.edges }

// Features returns the raw bin counts.
func (v *VariableHistogram) Features() []float64 {
	out := make([]float64, len(v.bins))
	for i, c := range v.bins {
		out[i] = float64(c)
	}
	return out
}

// StateBytes reports the bin counters plus edges.
func (v *VariableHistogram) StateBytes() int { return 4*len(v.bins) + 8*len(v.edges) + 8 }

// Reset zeros the bins.
func (v *VariableHistogram) Reset() {
	for i := range v.bins {
		v.bins[i] = 0
	}
	v.n = 0
}
