package streaming

import "math"

// Value-range contracts of the reducing functions — the exported
// counterpart of the behaviour the reducers implement. planprove's
// abstract interpreter consumes these to decide whether a plan's
// reducer inputs stay inside the range a fixed-point dataplane
// implementation of the function can represent, and the nicsim
// runtime prices the same bounds into its saturation counters so the
// static verdict and the simulator ground truth can be held
// accountable to each other (the polgen soundness cross-check).

// FixedPointInputMax bounds |x| for the general reducer input lane: a
// deployed Micro-C implementation carries samples in signed 32-bit
// fixed-point registers, so inputs past 2^31-1 would saturate or wrap
// on the NFP even though the simulator's int64 arithmetic is exact.
const FixedPointInputMax = int64(1)<<31 - 1

// DampedFixedPointInputMax bounds |x| for the damped-window (fd_*)
// functions. Their ProvisionedBytes pack (w, lin, sq, ts) into 32-bit
// fixed-point words, and the squared-sum lane needs x² to fit: |x| ≤
// 2^15-1 keeps x² under 2^30, leaving headroom for the decayed sum.
const DampedFixedPointInputMax = int64(1)<<15 - 1

// Contract describes the clamp-free input domain and state counter
// width of one reducing function.
type Contract struct {
	// InLo/InHi bound the clamp-free input range [InLo, InHi): the
	// histogram family behaviourally clamps samples outside it
	// (negatives into bin 0, the tail into the last bin — see
	// Histogram.Observe); every other function accepts the full int64
	// range. Unbounded sides are MinInt64 / MaxInt64.
	InLo, InHi int64
	// FixedPointMax bounds |x| for the function's fixed-point input
	// lane on a deployed NFP (see FixedPointInputMax and the damped
	// variant).
	FixedPointMax int64
	// CounterBits is the width of the widest per-sample counter in
	// the function's state (hist bins are u32, HLL registers u8, the
	// scalar accumulators u64/f64).
	CounterBits int
	// Clamps reports whether out-of-range inputs clamp behaviourally
	// (the histogram family) rather than pass through exactly.
	Clamps bool
}

// Bounded reports whether the contract constrains the input range at
// all (i.e. whether out-of-range inputs exist).
func (c Contract) Bounded() bool {
	return c.InLo != math.MinInt64 || c.InHi != math.MaxInt64
}

// HistRange returns the clamp-free input range of the histogram
// family for the given parameters: [0, Bins×BinWidth).
func HistRange(p Params) (lo, hi int64) {
	return 0, p.BinWidth * int64(p.Bins)
}

// ContractFor returns the value-range contract of f with the given
// parameters.
func ContractFor(f Func, p Params) Contract {
	c := Contract{
		InLo:          math.MinInt64,
		InHi:          math.MaxInt64,
		FixedPointMax: FixedPointInputMax,
		CounterBits:   64,
	}
	switch f {
	case FHist, FPDF, FCDF, FPercent:
		c.InLo, c.InHi = HistRange(p)
		c.CounterBits = 32 // uint32 bin counters
		c.Clamps = true
	case FCard:
		c.CounterBits = 8 // HyperLogLog rank registers
	case FDWeight, FDMean, FDStd, FD2DMag, FD2DRadius, FD2DCov, FD2DPCC:
		c.FixedPointMax = DampedFixedPointInputMax
		c.CounterBits = 32 // packed fixed-point words
	}
	return c
}
