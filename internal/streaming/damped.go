package streaming

import "math"

// DampedWelford maintains incremental statistics over a damped window
// — the decayed statistics Kitsune's feature extractor is built on
// (§1: "115-dimension traffic feature vectors with incremental
// statistics over a damped window"). Each statistic decays by
// 2^(-λ·Δt) between observations, so recent traffic dominates and
// idle flows fade without any explicit window buffer. State is
// (w, linSum, sqSum, lastTime): weight, decayed sum, decayed sum of
// squares and the last update timestamp.
type DampedWelford struct {
	// Lambda is the decay rate in 1/seconds. Kitsune uses the set
	// {5, 3, 1, 0.1, 0.01} to cover multiple time scales.
	Lambda   float64
	w        float64 // decayed weight ("count")
	linSum   float64
	sqSum    float64
	lastTime int64 // ns
	started  bool
}

// decayTo applies the exponential decay from lastTime to ts.
func (d *DampedWelford) decayTo(ts int64) {
	if !d.started {
		d.lastTime, d.started = ts, true
		return
	}
	if ts <= d.lastTime {
		return
	}
	dt := float64(ts-d.lastTime) / 1e9
	factor := math.Exp2(-d.Lambda * dt)
	d.w *= factor
	d.linSum *= factor
	d.sqSum *= factor
	d.lastTime = ts
}

// ObserveAt folds one sample observed at timestamp ts (ns).
func (d *DampedWelford) ObserveAt(x float64, ts int64) {
	d.decayTo(ts)
	d.w++
	d.linSum += x
	d.sqSum += x * x
}

// Merge folds another damped statistic into d. Both sides are decayed
// to the later of the two last-update timestamps and the decayed
// moments are summed — the unique combination consistent with
// observing both sample streams interleaved. The operation is exactly
// commutative (the same decay factors and float additions are applied
// regardless of argument order) and associative up to floating-point
// rounding (decay factors compose as exp2(-λ·t₁)·exp2(-λ·t₂) vs
// exp2(-λ·(t₁+t₂))). It is NOT idempotent — merging a statistic with
// itself doubles the weight, by design: the identity element is the
// never-started zero value. Both sides must share Lambda.
func (d *DampedWelford) Merge(o *DampedWelford) {
	if !o.started {
		return
	}
	if !d.started {
		*d = *o
		return
	}
	ts := d.lastTime
	if o.lastTime > ts {
		ts = o.lastTime
	}
	oc := *o
	d.decayTo(ts)
	oc.decayTo(ts)
	d.w += oc.w
	d.linSum += oc.linSum
	d.sqSum += oc.sqSum
}

// Weight returns the decayed sample weight.
func (d *DampedWelford) Weight() float64 { return d.w }

// Mean returns the decayed mean.
func (d *DampedWelford) Mean() float64 {
	if d.w == 0 {
		return 0
	}
	return d.linSum / d.w
}

// Var returns the decayed variance.
func (d *DampedWelford) Var() float64 {
	if d.w == 0 {
		return 0
	}
	m := d.Mean()
	v := d.sqSum/d.w - m*m
	if v < 0 {
		v = 0
	}
	return v
}

// Std returns the decayed standard deviation.
func (d *DampedWelford) Std() float64 { return math.Sqrt(d.Var()) }

// StateBytes reports the fixed 33-byte footprint.
func (d *DampedWelford) StateBytes() int { return 33 }

// Reset clears the statistics, preserving Lambda.
func (d *DampedWelford) Reset() {
	d.w, d.linSum, d.sqSum, d.lastTime, d.started = 0, 0, 0, 0, false
}

// Damped2D extends the damped statistics to two jointly observed
// streams, providing the 2D features (magnitude, radius, covariance,
// correlation) Kitsune computes per channel over damped windows.
type Damped2D struct {
	A, B DampedWelford
	// Decayed sum of residual products for covariance, updated with
	// each stream's newest residual against the other stream's most
	// recent residual (Kitsune's incremental 2D statistic).
	sr       float64
	wSR      float64
	lastResA float64
	lastResB float64
	lastTime int64
	started  bool
	Lambda   float64
}

// NewDamped2D constructs the pair with a shared decay rate.
func NewDamped2D(lambda float64) *Damped2D {
	return &Damped2D{A: DampedWelford{Lambda: lambda}, B: DampedWelford{Lambda: lambda}, Lambda: lambda}
}

func (d *Damped2D) decayTo(ts int64) {
	if !d.started {
		d.lastTime, d.started = ts, true
		return
	}
	if ts <= d.lastTime {
		return
	}
	dt := float64(ts-d.lastTime) / 1e9
	factor := math.Exp2(-d.Lambda * dt)
	d.sr *= factor
	d.wSR *= factor
	d.lastTime = ts
}

// ObserveA folds a sample from stream A at ts, accumulating the
// product of its residual with stream B's most recent residual.
func (d *Damped2D) ObserveA(x float64, ts int64) {
	d.decayTo(ts)
	res := x - d.A.Mean()
	d.A.ObserveAt(x, ts)
	d.lastResA = res
	d.sr += res * d.lastResB
	d.wSR++
}

// ObserveB folds a sample from stream B at ts.
func (d *Damped2D) ObserveB(x float64, ts int64) {
	d.decayTo(ts)
	res := x - d.B.Mean()
	d.B.ObserveAt(x, ts)
	d.lastResB = res
	d.sr += res * d.lastResA
	d.wSR++
}

// Magnitude returns sqrt(meanA² + meanB²).
func (d *Damped2D) Magnitude() float64 {
	ma, mb := d.A.Mean(), d.B.Mean()
	return math.Sqrt(ma*ma + mb*mb)
}

// Radius returns sqrt(varA² + varB²).
func (d *Damped2D) Radius() float64 {
	va, vb := d.A.Var(), d.B.Var()
	return math.Sqrt(va*va + vb*vb)
}

// Cov returns the decayed approximate covariance.
func (d *Damped2D) Cov() float64 {
	if d.wSR == 0 {
		return 0
	}
	return d.sr / d.wSR
}

// PCC returns the decayed approximate correlation coefficient,
// clamped to [-1, 1].
func (d *Damped2D) PCC() float64 {
	denom := d.A.Std() * d.B.Std()
	if denom == 0 {
		return 0
	}
	p := d.Cov() / denom
	return math.Max(-1, math.Min(1, p))
}

// StateBytes reports the combined footprint.
func (d *Damped2D) StateBytes() int { return d.A.StateBytes() + d.B.StateBytes() + 24 }

// Reset clears both streams and the joint state.
func (d *Damped2D) Reset() {
	d.A.Reset()
	d.B.Reset()
	d.sr, d.wSR, d.lastTime, d.started = 0, 0, 0, false
	d.lastResA, d.lastResB = 0, 0
}
