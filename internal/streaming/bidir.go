package streaming

import "math"

// Bidirectional implements the 2D statistics over bidirectional
// sequences from Appendix A (f_mag, f_radius, f_cov, f_pcc). These
// are the features Kitsune and HELAD compute over the two directions
// of a channel/socket: treating the forward and backward sample
// streams as two correlated 1D streams i and j,
//
//	magnitude = sqrt(mean_i² + mean_j²)
//	radius    = sqrt(var_i²  + var_j²)
//	cov       = SP/n where SP accumulates the product of each new
//	            sample's residual with the other stream's most
//	            recent residual (Kitsune's incremental 2D statistic)
//	pcc       = cov / (std_i · std_j)
//
// Direction is carried in the sample's sign: positive samples belong
// to the forward stream, negative samples (magnitude |x|) to the
// backward stream, matching the f_direction mapping function that
// emits +1/-1 factors (§4.2 Figure 5).
type Bidirectional struct {
	emit Func
	fwd  Welford
	bwd  Welford
	// Residual bookkeeping for the incremental covariance.
	lastResFwd float64
	lastResBwd float64
	sp         float64 // sum of residual products
	nPairs     uint64
}

// Observe folds one directional sample: sign selects the stream, the
// magnitude is the value.
func (b *Bidirectional) Observe(x int64) {
	if x >= 0 {
		res := float64(x) - b.fwd.Mean()
		b.fwd.Observe(x)
		b.lastResFwd = res
		b.sp += res * b.lastResBwd
	} else {
		v := -x
		res := float64(v) - b.bwd.Mean()
		b.bwd.Observe(v)
		b.lastResBwd = res
		b.sp += res * b.lastResFwd
	}
	b.nPairs++
}

// Magnitude returns sqrt(mean_f² + mean_b²).
func (b *Bidirectional) Magnitude() float64 {
	return math.Sqrt(b.fwd.Mean()*b.fwd.Mean() + b.bwd.Mean()*b.bwd.Mean())
}

// Radius returns sqrt(var_f² + var_b²).
func (b *Bidirectional) Radius() float64 {
	return math.Sqrt(b.fwd.Var()*b.fwd.Var() + b.bwd.Var()*b.bwd.Var())
}

// Cov returns the approximate covariance SP/n.
func (b *Bidirectional) Cov() float64 {
	if b.nPairs == 0 {
		return 0
	}
	return b.sp / float64(b.nPairs)
}

// PCC returns the approximate Pearson correlation coefficient,
// clamped to [-1, 1].
func (b *Bidirectional) PCC() float64 {
	denom := math.Sqrt(b.fwd.Var()) * math.Sqrt(b.bwd.Var())
	if denom == 0 {
		return 0
	}
	p := b.Cov() / denom
	return math.Max(-1, math.Min(1, p))
}

// Features emits the statistic selected at construction.
func (b *Bidirectional) Features() []float64 {
	switch b.emit {
	case FRadius:
		return []float64{b.Radius()}
	case FCov:
		return []float64{b.Cov()}
	case FPCC:
		return []float64{b.PCC()}
	default:
		return []float64{b.Magnitude()}
	}
}

// StateBytes reports the two Welford states plus covariance
// bookkeeping.
func (b *Bidirectional) StateBytes() int { return b.fwd.StateBytes() + b.bwd.StateBytes() + 32 }

// Reset clears both streams and the covariance state.
func (b *Bidirectional) Reset() {
	b.fwd.Reset()
	b.bwd.Reset()
	b.lastResFwd, b.lastResBwd, b.sp, b.nPairs = 0, 0, 0, 0
}
