package streaming

import "fmt"

// TimedReducer is the extension interface for reducing functions that
// need the packet timestamp in addition to the sample — the damped
// (decayed) window statistics Kitsune/HELAD build on. The FE-NIC
// runtime feeds ObserveAt when the reducer implements it, falling
// back to Observe otherwise. This follows the paper's extensibility
// story (§4.1: reducing functions "can also be extended by users").
type TimedReducer interface {
	Reducer
	ObserveAt(x int64, ts int64)
}

// Damped reducing functions over 2^(-λΔt) windows. FDWeight/FDMean/
// FDStd are the 1D statistics (w, μ, σ); the FD2D* functions are the
// bidirectional 2D statistics, with direction carried in the sample
// sign exactly like the undamped Bidirectional reducers.
const (
	FDWeight Func = Func(numFuncs) + iota
	FDMean
	FDStd
	FD2DMag
	FD2DRadius
	FD2DCov
	FD2DPCC
	numFuncsExt
)

// NumFuncsTotal counts all reducing functions including the damped
// extension set.
const NumFuncsTotal = int(numFuncsExt)

// IsTimed reports whether f is a damped (timestamp-consuming)
// reducing function; the policy compiler batches the timestamp
// metadata field whenever one is used.
func IsTimed(f Func) bool { return f >= FDWeight && f < numFuncsExt }

// dampedName returns the policy-language name of a damped function,
// or "" if f is not one.
func dampedName(f Func) string {
	switch f {
	case FDWeight:
		return "fd_weight"
	case FDMean:
		return "fd_mean"
	case FDStd:
		return "fd_std"
	case FD2DMag:
		return "fd_mag"
	case FD2DRadius:
		return "fd_radius"
	case FD2DCov:
		return "fd_cov"
	case FD2DPCC:
		return "fd_pcc"
	}
	return ""
}

// Damped1D adapts DampedWelford to the Reducer interface, emitting
// weight, mean or stddev.
type Damped1D struct {
	emit Func
	w    DampedWelford
}

// NewDamped1D builds a damped 1D reducer with decay rate lambda
// (1/s).
func NewDamped1D(emit Func, lambda float64) *Damped1D {
	return &Damped1D{emit: emit, w: DampedWelford{Lambda: lambda}}
}

// ObserveAt folds a timestamped sample.
func (d *Damped1D) ObserveAt(x int64, ts int64) { d.w.ObserveAt(float64(x), ts) }

// Observe folds a sample with no time advance (decay frozen); the
// runtime always uses ObserveAt.
func (d *Damped1D) Observe(x int64) { d.w.ObserveAt(float64(x), d.w.lastTime) }

// Features emits the selected damped statistic.
func (d *Damped1D) Features() []float64 {
	switch d.emit {
	case FDMean:
		return []float64{d.w.Mean()}
	case FDStd:
		return []float64{d.w.Std()}
	default:
		return []float64{d.w.Weight()}
	}
}

// StateBytes reports the damped window state.
func (d *Damped1D) StateBytes() int { return d.w.StateBytes() }

// Reset clears the window.
func (d *Damped1D) Reset() { d.w.Reset() }

// Damped2DReducer adapts Damped2D to the Reducer interface: positive
// samples feed stream A (forward), negative samples feed stream B
// (backward) with magnitude |x|.
type Damped2DReducer struct {
	emit Func
	d    *Damped2D
}

// NewDamped2DReducer builds a damped 2D reducer.
func NewDamped2DReducer(emit Func, lambda float64) *Damped2DReducer {
	return &Damped2DReducer{emit: emit, d: NewDamped2D(lambda)}
}

// ObserveAt folds a timestamped directional sample.
func (r *Damped2DReducer) ObserveAt(x int64, ts int64) {
	if x >= 0 {
		r.d.ObserveA(float64(x), ts)
	} else {
		r.d.ObserveB(float64(-x), ts)
	}
}

// Observe folds with a frozen clock; the runtime always uses
// ObserveAt.
func (r *Damped2DReducer) Observe(x int64) { r.ObserveAt(x, r.d.lastTime) }

// Features emits the selected damped 2D statistic.
func (r *Damped2DReducer) Features() []float64 {
	switch r.emit {
	case FD2DRadius:
		return []float64{r.d.Radius()}
	case FD2DCov:
		return []float64{r.d.Cov()}
	case FD2DPCC:
		return []float64{r.d.PCC()}
	default:
		return []float64{r.d.Magnitude()}
	}
}

// StateBytes reports the 2D window state.
func (r *Damped2DReducer) StateBytes() int { return r.d.StateBytes() }

// Reset clears both windows.
func (r *Damped2DReducer) Reset() { r.d.Reset() }

// newDamped dispatches the damped constructors for New.
func newDamped(f Func, p Params) (Reducer, error) {
	if p.Lambda <= 0 {
		return nil, fmt.Errorf("streaming: %s requires a positive decay rate lambda", f)
	}
	switch f {
	case FDWeight, FDMean, FDStd:
		return NewDamped1D(f, p.Lambda), nil
	case FD2DMag, FD2DRadius, FD2DCov, FD2DPCC:
		return NewDamped2DReducer(f, p.Lambda), nil
	}
	return nil, fmt.Errorf("streaming: unknown damped function %d", uint8(f))
}
