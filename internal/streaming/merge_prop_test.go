package streaming

import (
	"math"
	"math/rand"
	"testing"
)

// Property tests for the sketch merge operations. DeterministicMerge
// (and any future cross-shard reducer combination) silently relies on
// merges being order-insensitive; these tests pin the exact algebraic
// contract each reducer provides: HyperLogLog merges are a semilattice
// join (commutative, associative, idempotent), DampedWelford merges
// are exactly commutative and associative only to floating-point
// tolerance, IntMean merges are exactly commutative and associative
// to the ±1 truncation of integer division.

// ---- HyperLogLog ----

func hllFrom(t *testing.T, r *rand.Rand, n int) *HyperLogLog {
	t.Helper()
	h, err := NewHyperLogLog(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		h.Observe(r.Int63n(1 << 20))
	}
	return h
}

func hllClone(t *testing.T, h *HyperLogLog) *HyperLogLog {
	t.Helper()
	c, err := NewHyperLogLog(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Merge(h); err != nil {
		t.Fatal(err)
	}
	return c
}

func hllEqual(a, b *HyperLogLog) bool {
	if len(a.buckets) != len(b.buckets) {
		return false
	}
	for i := range a.buckets {
		if a.buckets[i] != b.buckets[i] {
			return false
		}
	}
	return true
}

func TestHLLMergeProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 50; trial++ {
		a := hllFrom(t, r, 1+r.Intn(2000))
		b := hllFrom(t, r, 1+r.Intn(2000))
		c := hllFrom(t, r, 1+r.Intn(2000))

		// Commutativity: a ∪ b == b ∪ a, exactly.
		ab := hllClone(t, a)
		must(t, ab.Merge(b))
		ba := hllClone(t, b)
		must(t, ba.Merge(a))
		if !hllEqual(ab, ba) {
			t.Fatalf("trial %d: HLL merge not commutative", trial)
		}

		// Associativity: (a ∪ b) ∪ c == a ∪ (b ∪ c), exactly.
		abc1 := hllClone(t, ab)
		must(t, abc1.Merge(c))
		bc := hllClone(t, b)
		must(t, bc.Merge(c))
		abc2 := hllClone(t, a)
		must(t, abc2.Merge(bc))
		if !hllEqual(abc1, abc2) {
			t.Fatalf("trial %d: HLL merge not associative", trial)
		}

		// Idempotence: a ∪ a == a, exactly.
		aa := hllClone(t, a)
		must(t, aa.Merge(a))
		if !hllEqual(aa, a) {
			t.Fatalf("trial %d: HLL merge not idempotent", trial)
		}
	}
}

func TestHLLMergeUnionEquivalence(t *testing.T) {
	// Merging two sketches must equal one sketch of the combined
	// stream — the property that makes sharded cardinality estimation
	// exact with respect to the sketch.
	r := rand.New(rand.NewSource(5))
	a, _ := NewHyperLogLog(10)
	b, _ := NewHyperLogLog(10)
	union, _ := NewHyperLogLog(10)
	for i := 0; i < 5000; i++ {
		x := r.Int63n(1 << 24)
		union.Observe(x)
		if i%2 == 0 {
			a.Observe(x)
		} else {
			b.Observe(x)
		}
	}
	must(t, a.Merge(b))
	if !hllEqual(a, union) {
		t.Fatal("merged shard sketches differ from the union-stream sketch")
	}
}

func TestHLLMergeSizeMismatch(t *testing.T) {
	a, _ := NewHyperLogLog(8)
	b, _ := NewHyperLogLog(10)
	if err := a.Merge(b); err == nil {
		t.Fatal("bucket-count mismatch accepted")
	}
}

// ---- DampedWelford ----

func dampedFrom(r *rand.Rand, n int, base int64) *DampedWelford {
	d := &DampedWelford{Lambda: 0.1}
	ts := base
	for i := 0; i < n; i++ {
		ts += r.Int63n(50_000_000) // up to 50ms apart
		d.ObserveAt(r.Float64()*1000, ts)
	}
	return d
}

func dampedEqual(a, b *DampedWelford) bool {
	return a.w == b.w && a.linSum == b.linSum && a.sqSum == b.sqSum && a.lastTime == b.lastTime
}

func dampedClose(a, b *DampedWelford, tol float64) bool {
	near := func(x, y float64) bool {
		d := math.Abs(x - y)
		return d <= tol*(1+math.Abs(x)+math.Abs(y))
	}
	return near(a.w, b.w) && near(a.linSum, b.linSum) && near(a.sqSum, b.sqSum) && a.lastTime == b.lastTime
}

func TestDampedMergeProperties(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		a := dampedFrom(r, 1+r.Intn(200), 1_000_000)
		b := dampedFrom(r, 1+r.Intn(200), 2_000_000)
		c := dampedFrom(r, 1+r.Intn(200), 3_000_000)

		// Commutativity is exact: both orders decay to the same common
		// timestamp and perform the same float additions.
		ab, ba := *a, *b
		ab.Merge(b)
		ba.Merge(a)
		if !dampedEqual(&ab, &ba) {
			t.Fatalf("trial %d: damped merge not commutative: %+v vs %+v", trial, ab, ba)
		}

		// Associativity only to floating-point tolerance: decay
		// factors compose multiplicatively in one order and through
		// a single larger exponent in the other.
		abc1 := ab
		abc1.Merge(c)
		bc := *b
		bc.Merge(c)
		abc2 := *a
		abc2.Merge(&bc)
		if !dampedClose(&abc1, &abc2, 1e-9) {
			t.Fatalf("trial %d: damped merge drifted past tolerance: %+v vs %+v", trial, abc1, abc2)
		}

		// The never-started zero value is the identity (damped merges
		// are deliberately NOT idempotent — self-merge doubles the
		// weight).
		id := DampedWelford{Lambda: 0.1}
		ai := *a
		ai.Merge(&id)
		if !dampedEqual(&ai, a) {
			t.Fatalf("trial %d: merging the empty statistic changed the receiver", trial)
		}
		ia := id
		ia.Merge(a)
		if !dampedEqual(&ia, a) {
			t.Fatalf("trial %d: merging into the empty statistic lost state", trial)
		}
	}
}

func TestDampedMergeMatchesInterleavedStream(t *testing.T) {
	// Feeding two shards and merging approximates one statistic fed
	// the interleaved stream. With identical timestamps on the merge
	// boundary the agreement is exact in the moments.
	r := rand.New(rand.NewSource(17))
	var whole, shardA, shardB DampedWelford
	whole.Lambda, shardA.Lambda, shardB.Lambda = 1, 1, 1
	ts := int64(0)
	type sample struct {
		x  float64
		ts int64
	}
	var sa, sb []sample
	for i := 0; i < 400; i++ {
		ts += r.Int63n(10_000_000)
		x := r.Float64() * 100
		whole.ObserveAt(x, ts)
		if i%2 == 0 {
			sa = append(sa, sample{x, ts})
		} else {
			sb = append(sb, sample{x, ts})
		}
	}
	for _, s := range sa {
		shardA.ObserveAt(s.x, s.ts)
	}
	for _, s := range sb {
		shardB.ObserveAt(s.x, s.ts)
	}
	shardA.Merge(&shardB)
	if math.Abs(shardA.Mean()-whole.Mean()) > 1e-6*(1+math.Abs(whole.Mean())) {
		t.Fatalf("merged mean %g vs interleaved %g", shardA.Mean(), whole.Mean())
	}
	if math.Abs(shardA.Weight()-whole.Weight()) > 1e-6*(1+whole.Weight()) {
		t.Fatalf("merged weight %g vs interleaved %g", shardA.Weight(), whole.Weight())
	}
}

// ---- IntMean ----

func intMeanFrom(r *rand.Rand, n int) *IntMean {
	im := &IntMean{}
	for i := 0; i < n; i++ {
		im.Observe(r.Int63n(100_000))
	}
	return im
}

func TestIntMeanMergeProperties(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		a := intMeanFrom(r, 1+r.Intn(500))
		b := intMeanFrom(r, 1+r.Intn(500))
		c := intMeanFrom(r, 1+r.Intn(500))

		// Commutativity is exact: the weighted formula is symmetric
		// and integer arithmetic has no rounding order-dependence.
		ab, ba := *a, *b
		ab.Merge(b)
		ba.Merge(a)
		if ab.Mean() != ba.Mean() || ab.Count() != ba.Count() {
			t.Fatalf("trial %d: intmean merge not commutative: %d/%d vs %d/%d",
				trial, ab.Mean(), ab.Count(), ba.Mean(), ba.Count())
		}

		// Associativity to ±1: the truncating division happens at
		// different intermediate points.
		abc1 := ab
		abc1.Merge(c)
		bc := *b
		bc.Merge(c)
		abc2 := *a
		abc2.Merge(&bc)
		if abc1.Count() != abc2.Count() {
			t.Fatalf("trial %d: counts diverged: %d vs %d", trial, abc1.Count(), abc2.Count())
		}
		if d := abc1.Mean() - abc2.Mean(); d < -1 || d > 1 {
			t.Fatalf("trial %d: means diverged past ±1: %d vs %d", trial, abc1.Mean(), abc2.Mean())
		}

		// Zero value is the identity, in both directions.
		ai := *a
		ai.Merge(&IntMean{})
		if ai.Mean() != a.Mean() || ai.Count() != a.Count() {
			t.Fatalf("trial %d: merging empty changed the receiver", trial)
		}
		ia := IntMean{}
		ia.Merge(a)
		if ia.Mean() != a.Mean() || ia.Count() != a.Count() {
			t.Fatalf("trial %d: merging into empty lost state", trial)
		}
	}
}

func TestIntMeanMergeTracksTrueMean(t *testing.T) {
	// The merged mean must match the exact mean of the union within
	// the reducer's own approximation envelope.
	r := rand.New(rand.NewSource(77))
	a := &IntMean{}
	b := &IntMean{}
	var sum, n int64
	for i := 0; i < 10_000; i++ {
		x := r.Int63n(1_000)
		sum, n = sum+x, n+1
		if i%2 == 0 {
			a.Observe(x)
		} else {
			b.Observe(x)
		}
	}
	a.Merge(b)
	exact := sum / n
	if d := a.Mean() - exact; d < -5 || d > 5 {
		t.Fatalf("merged mean %d drifted from exact %d", a.Mean(), exact)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
