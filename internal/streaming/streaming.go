// Package streaming implements the one-pass streaming algorithms that
// SuperFE's FE-NIC uses to compute reducing functions (§6.1 of the
// paper, Appendix A Table 5).
//
// Every reducer observes a stream of int64 samples one at a time,
// keeps O(1) or O(bins) state, and can produce its feature value(s)
// at any point. This mirrors the constraint of SoC SmartNIC cores:
// restricted state, single pass, no floating point on the hot path.
//
// Alongside each streaming implementation the package provides the
// naïve counterpart (store-everything, two-pass) used by the Figure
// 15 ablation, so the memory/computation comparison in the paper can
// be reproduced directly.
//
//superfe:deterministic
package streaming

import (
	"fmt"
	"math"
)

// Reducer is the common interface of all reducing-function state.
// Observe consumes one sample; Features emits the reducer's output
// feature values (most reducers emit one, ft_hist emits one per bin,
// f_array emits the whole sequence); StateBytes reports the state
// footprint in bytes, used by the NIC memory model and the ILP
// placement.
type Reducer interface {
	Observe(x int64)
	Features() []float64
	StateBytes() int
	Reset()
}

// Func identifies a reducing function from Appendix A Table 5.
type Func uint8

// Reducing functions (Appendix A Table 5).
const (
	FSum Func = iota
	FMean
	FVar
	FStd
	FMax
	FMin
	FKurtosis
	FSkew
	FCard
	FArray
	FPDF
	FCDF
	FHist
	FPercent
	FMag    // magnitude of bidirectional sequences (Kitsune 2D stats)
	FRadius // radius of bidirectional sequences
	FCov    // covariance between bidirectional sequences
	FPCC    // correlation coefficient of bidirectional sequences
	numFuncs
)

// NumFuncs is the count of defined reducing functions.
const NumFuncs = int(numFuncs)

// String returns the policy-language name of the function.
func (f Func) String() string {
	switch f {
	case FSum:
		return "f_sum"
	case FMean:
		return "f_mean"
	case FVar:
		return "f_var"
	case FStd:
		return "f_std"
	case FMax:
		return "f_max"
	case FMin:
		return "f_min"
	case FKurtosis:
		return "f_kur"
	case FSkew:
		return "f_skew"
	case FCard:
		return "f_card"
	case FArray:
		return "f_array"
	case FPDF:
		return "f_pdf"
	case FCDF:
		return "f_cdf"
	case FHist:
		return "ft_hist"
	case FPercent:
		return "ft_percent"
	case FMag:
		return "f_mag"
	case FRadius:
		return "f_radius"
	case FCov:
		return "f_cov"
	case FPCC:
		return "f_pcc"
	}
	if n := dampedName(f); n != "" {
		return n
	}
	return fmt.Sprintf("f(%d)", uint8(f))
}

// Params carries the per-function parameters. Only the histogram
// family uses them (bin width and count, §4.2 Figure 4); f_array and
// the bidirectional functions use MaxLen as a safety cap on stored
// sequence length.
type Params struct {
	BinWidth int64 // ft_hist / ft_percent / f_pdf / f_cdf
	Bins     int
	Quantile float64 // ft_percent: which quantile to report, (0,1)
	MaxLen   int     // f_array cap; 0 means DefaultMaxArray
	HLLBits  int     // f_card: 2^bits buckets; 0 means DefaultHLLBits
	Lambda   float64 // fd_* damped functions: decay rate in 1/s
}

// Defaults for optional parameters.
const (
	DefaultMaxArray = 5000 // matches the AWF/DF/TF 5000-long direction sequences
	DefaultHLLBits  = 6    // 64 HyperLogLog buckets
)

// New constructs the streaming reducer for f with the given
// parameters. It returns an error for unknown functions or invalid
// parameters so the policy compiler can reject bad policies early.
func New(f Func, p Params) (Reducer, error) {
	switch f {
	case FSum:
		return &Sum{}, nil
	case FMean, FVar, FStd:
		return &Welford{emit: f}, nil
	case FMax:
		return &Extremum{max: true}, nil
	case FMin:
		return &Extremum{}, nil
	case FKurtosis, FSkew:
		return &Moments{emit: f}, nil
	case FCard:
		bits := p.HLLBits
		if bits == 0 {
			bits = DefaultHLLBits
		}
		return NewHyperLogLog(bits)
	case FArray:
		maxLen := p.MaxLen
		if maxLen == 0 {
			maxLen = DefaultMaxArray
		}
		return &Array{maxLen: maxLen}, nil
	case FHist, FPercent, FPDF, FCDF:
		if p.Bins <= 0 || p.BinWidth <= 0 {
			return nil, fmt.Errorf("streaming: %s requires positive bins and bin width, got bins=%d width=%d", f, p.Bins, p.BinWidth)
		}
		if f == FPercent && (p.Quantile <= 0 || p.Quantile >= 1) {
			return nil, fmt.Errorf("streaming: ft_percent requires quantile in (0,1), got %g", p.Quantile)
		}
		return &Histogram{emit: f, width: p.BinWidth, bins: make([]uint32, p.Bins), quantile: p.Quantile}, nil
	case FMag, FRadius, FCov, FPCC:
		return &Bidirectional{emit: f}, nil
	case FDWeight, FDMean, FDStd, FD2DMag, FD2DRadius, FD2DCov, FD2DPCC:
		return newDamped(f, p)
	}
	return nil, fmt.Errorf("streaming: unknown reducing function %d", uint8(f))
}

// ProvisionedBytes returns the per-group state footprint a deployed
// (Micro-C) implementation provisions for f — the b_s input of the
// §6.2 placement ILP. It differs from a fresh reducer's StateBytes
// in two cases: f_array provisions a fixed resident window (the bulk
// sequence streams to external memory as it grows), and the damped
// statistics pack into 32-bit fixed-point words on the NFP.
func ProvisionedBytes(f Func, p Params) int {
	switch f {
	case FArray:
		return 512 // resident window; bulk spills to EMEM/DRAM
	case FDWeight, FDMean, FDStd:
		return 16 // packed (w, lin, sq, ts)
	case FD2DMag, FD2DRadius, FD2DCov, FD2DPCC:
		return 40 // two packed windows + residual product
	}
	r, err := New(f, p)
	if err != nil {
		return 16
	}
	return r.StateBytes()
}

// FeatureWidth returns how many feature values f emits given params.
// The policy compiler uses this to compute feature-vector dimensions
// (Table 3 of the paper).
func FeatureWidth(f Func, p Params) int {
	switch f {
	case FHist, FPDF, FCDF:
		return p.Bins
	case FArray:
		if p.MaxLen > 0 {
			return p.MaxLen
		}
		return DefaultMaxArray
	default:
		return 1
	}
}

// ---------------------------------------------------------------------------
// Simple reducers: sum, max, min.

// Sum implements f_sum: one 64-bit state, one add per sample.
type Sum struct {
	n   uint64
	sum int64
}

// Observe adds the sample.
//
//superfe:hotpath
func (s *Sum) Observe(x int64) { s.sum += x; s.n++ }

// Features returns the running sum.
func (s *Sum) Features() []float64 { return []float64{float64(s.sum)} }

// StateBytes reports 16 bytes (count + sum).
func (s *Sum) StateBytes() int { return 16 }

// Reset clears the state.
func (s *Sum) Reset() { *s = Sum{} }

// Count returns the number of observed samples.
func (s *Sum) Count() uint64 { return s.n }

// Extremum implements f_max / f_min: one state, one compare per
// sample.
type Extremum struct {
	max   bool
	seen  bool
	value int64
}

// Observe folds the sample into the extremum.
//
//superfe:hotpath
func (e *Extremum) Observe(x int64) {
	if !e.seen {
		e.value, e.seen = x, true
		return
	}
	if e.max == (x > e.value) && x != e.value {
		e.value = x
	}
}

// Features returns the extremum (0 if no samples were observed).
func (e *Extremum) Features() []float64 {
	if !e.seen {
		return []float64{0}
	}
	return []float64{float64(e.value)}
}

// StateBytes reports 9 bytes (value + seen flag).
func (e *Extremum) StateBytes() int { return 9 }

// Reset clears the state, preserving the max/min mode.
func (e *Extremum) Reset() { e.seen, e.value = false, 0 }

// ---------------------------------------------------------------------------
// Welford's online mean/variance (Equations 1-2 of the paper).

// Welford implements f_mean, f_var and f_std with Welford's
// single-pass algorithm. State: n, mean, M2 (sum of squared
// deviations). The paper's Equation (1)-(2) formulation updates σ²
// directly; we keep M2 = n·σ² which is the numerically standard form
// and algebraically identical.
type Welford struct {
	emit Func
	n    uint64
	mean float64
	m2   float64
}

// Observe folds one sample into the running moments.
//
//superfe:hotpath
func (w *Welford) Observe(x int64) {
	w.n++
	xf := float64(x)
	delta := xf - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (xf - w.mean)
}

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the running population variance.
func (w *Welford) Var() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Count returns the number of observed samples.
func (w *Welford) Count() uint64 { return w.n }

// Features emits mean, variance or stddev depending on construction.
func (w *Welford) Features() []float64 {
	switch w.emit {
	case FVar:
		return []float64{w.Var()}
	case FStd:
		return []float64{math.Sqrt(w.Var())}
	default:
		return []float64{w.mean}
	}
}

// StateBytes reports 24 bytes (n, mean, M2).
func (w *Welford) StateBytes() int { return 24 }

// Reset clears the state, preserving the emit mode.
func (w *Welford) Reset() { w.n, w.mean, w.m2 = 0, 0, 0 }

// ---------------------------------------------------------------------------
// Higher moments: skew and kurtosis.

// Moments implements f_skew and f_kur with the one-pass extension of
// Welford's algorithm to third and fourth central moments.
type Moments struct {
	emit             Func
	n                uint64
	mean, m2, m3, m4 float64
}

// Observe folds one sample into the running central moments.
//
//superfe:hotpath
func (m *Moments) Observe(x int64) {
	n1 := float64(m.n)
	m.n++
	n := float64(m.n)
	xf := float64(x)
	delta := xf - m.mean
	deltaN := delta / n
	deltaN2 := deltaN * deltaN
	term1 := delta * deltaN * n1
	m.mean += deltaN
	m.m4 += term1*deltaN2*(n*n-3*n+3) + 6*deltaN2*m.m2 - 4*deltaN*m.m3
	m.m3 += term1*deltaN*(n-2) - 3*deltaN*m.m2
	m.m2 += term1
}

// Skew returns the sample skewness g1.
func (m *Moments) Skew() float64 {
	if m.n < 2 || m.m2 == 0 {
		return 0
	}
	n := float64(m.n)
	return math.Sqrt(n) * m.m3 / math.Pow(m.m2, 1.5)
}

// Kurtosis returns the excess kurtosis g2.
func (m *Moments) Kurtosis() float64 {
	if m.n < 2 || m.m2 == 0 {
		return 0
	}
	n := float64(m.n)
	return n*m.m4/(m.m2*m.m2) - 3
}

// Features emits skew or kurtosis depending on construction.
func (m *Moments) Features() []float64 {
	if m.emit == FKurtosis {
		return []float64{m.Kurtosis()}
	}
	return []float64{m.Skew()}
}

// StateBytes reports 40 bytes (n + four moments).
func (m *Moments) StateBytes() int { return 40 }

// Reset clears the state, preserving the emit mode.
func (m *Moments) Reset() { m.n, m.mean, m.m2, m.m3, m.m4 = 0, 0, 0, 0, 0 }

// ---------------------------------------------------------------------------
// f_array: pack samples into a sequence (direction sequences, §4.2).

// Array implements f_array: it stores the raw sequence up to maxLen
// samples (the fixed feature length the deep-learning fingerprinting
// models expect), discarding overflow.
type Array struct {
	maxLen int
	data   []int64
}

// Observe appends the sample until the cap is reached.
//
//superfe:hotpath
func (a *Array) Observe(x int64) {
	if len(a.data) < a.maxLen {
		a.data = append(a.data, x)
	}
}

// Features returns the sequence zero-padded to maxLen, which is the
// fixed-length representation the WFP models consume.
func (a *Array) Features() []float64 {
	out := make([]float64, a.maxLen)
	for i, v := range a.data {
		out[i] = float64(v)
	}
	return out
}

// Values returns the raw (unpadded) sequence.
func (a *Array) Values() []int64 { return a.data }

// StateBytes reports the current storage footprint.
func (a *Array) StateBytes() int { return 8 * len(a.data) }

// Reset clears the sequence, preserving the cap.
func (a *Array) Reset() { a.data = a.data[:0] }
