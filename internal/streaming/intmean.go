package streaming

// IntMean models the division-free running mean used on the NFP
// cores (§6.2 "Computational cycle optimization", third item). The
// NFP lacks hardware division: the compiler's algorithmic division
// costs ~1500 cycles, so SuperFE replaces the per-packet division in
// Welford's update
//
//	mean += (x - mean) / n
//
// with a comparison: once n is large, (x-mean)/n is almost always 0
// or ±1, so the increment is computed by comparing |x-mean| against n
// instead of dividing. For small n (below smallN) the exact division
// is kept, because early estimates matter and divisions are rare.
//
// IntMean exists both as a usable reducer and as the reference
// implementation for the cycle model in internal/nicsim: its
// DivisionsUsed counter lets the Figure 17 experiment report how many
// expensive operations each optimization level performs.
type IntMean struct {
	n    int64
	mean int64
	// DivisionsUsed counts actual divide operations performed, for
	// the cycle model.
	DivisionsUsed uint64
	// ComparesUsed counts the cheap compare-based updates.
	ComparesUsed uint64
	// Exact disables the optimization (baseline mode in Figure 17).
	Exact bool
}

// smallN is the threshold below which IntMean still divides.
const smallN = 16

// Observe folds one sample into the division-free running mean.
func (im *IntMean) Observe(x int64) {
	im.n++
	delta := x - im.mean
	if im.Exact || im.n < smallN {
		im.mean += delta / im.n
		im.DivisionsUsed++
		return
	}
	// Division elimination: compare |delta| against n to derive the
	// quotient when it is small (0 or ±1 covers the common case); fall
	// back to at most a few subtract steps for moderate quotients, and
	// to real division only for outliers.
	im.ComparesUsed++
	neg := delta < 0
	mag := delta
	if neg {
		mag = -mag
	}
	switch {
	case mag < im.n:
		// quotient 0 — nothing to add.
	case mag < 2*im.n:
		if neg {
			im.mean--
		} else {
			im.mean++
		}
	case mag < 8*im.n:
		// Small quotient: subtract-loop (cheap on NFP, ~1 cycle per
		// step, bounded by 8).
		q := int64(0)
		for mag >= im.n {
			mag -= im.n
			q++
		}
		if neg {
			q = -q
		}
		im.mean += q
	default:
		// Outlier: take the real division hit.
		im.mean += delta / im.n
		im.DivisionsUsed++
	}
}

// Mean returns the integer running mean.
func (im *IntMean) Mean() int64 { return im.mean }

// Count returns the number of observed samples.
func (im *IntMean) Count() int64 { return im.n }

// Features returns the mean as a float for the Reducer interface.
func (im *IntMean) Features() []float64 { return []float64{float64(im.mean)} }

// StateBytes reports 16 bytes (n + mean).
func (im *IntMean) StateBytes() int { return 16 }

// Reset clears the state and counters, preserving the Exact mode.
func (im *IntMean) Reset() {
	im.n, im.mean, im.DivisionsUsed, im.ComparesUsed = 0, 0, 0, 0
}
