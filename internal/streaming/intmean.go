package streaming

// IntMean models the division-free running mean used on the NFP
// cores (§6.2 "Computational cycle optimization", third item). The
// NFP lacks hardware division: the compiler's algorithmic division
// costs ~1500 cycles, so SuperFE replaces the per-packet division in
// Welford's update
//
//	mean += (x - mean) / n
//
// with a comparison: once n is large, (x-mean)/n is almost always 0
// or ±1, so the increment is computed by comparing |x-mean| against n
// instead of dividing. For small n (below smallN) the exact division
// is kept, because early estimates matter and divisions are rare.
//
// IntMean exists both as a usable reducer and as the reference
// implementation for the cycle model in internal/nicsim: its
// DivisionsUsed counter lets the Figure 17 experiment report how many
// expensive operations each optimization level performs.
type IntMean struct {
	n    int64
	mean int64
	// DivisionsUsed counts actual divide operations performed, for
	// the cycle model.
	DivisionsUsed uint64
	// ComparesUsed counts the cheap compare-based updates.
	ComparesUsed uint64
	// Exact disables the optimization (baseline mode in Figure 17).
	Exact bool
}

// smallN is the threshold below which IntMean still divides.
const smallN = 16

// Observe folds one sample into the division-free running mean.
func (im *IntMean) Observe(x int64) {
	im.n++
	delta := x - im.mean
	if im.Exact || im.n < smallN {
		im.mean += delta / im.n
		im.DivisionsUsed++
		return
	}
	// Division elimination: compare |delta| against n to derive the
	// quotient when it is small (0 or ±1 covers the common case); fall
	// back to at most a few subtract steps for moderate quotients, and
	// to real division only for outliers.
	im.ComparesUsed++
	neg := delta < 0
	mag := delta
	if neg {
		mag = -mag
	}
	switch {
	case mag < im.n:
		// quotient 0 — nothing to add.
	case mag < 2*im.n:
		if neg {
			im.mean--
		} else {
			im.mean++
		}
	case mag < 8*im.n:
		// Small quotient: subtract-loop (cheap on NFP, ~1 cycle per
		// step, bounded by 8).
		q := int64(0)
		for mag >= im.n {
			mag -= im.n
			q++
		}
		if neg {
			q = -q
		}
		im.mean += q
	default:
		// Outlier: take the real division hit.
		im.mean += delta / im.n
		im.DivisionsUsed++
	}
}

// Merge folds another running mean into im with the symmetric
// weighted formula (nₐ·mₐ + n_b·m_b)/(nₐ+n_b) — integer arithmetic,
// so the result is exactly commutative; associativity holds to ±1
// from the two truncating divisions taken in different orders. The
// one division is charged to DivisionsUsed like any other expensive
// operation (merges are per-eviction, not per-packet, so the NFP can
// afford it). The zero value is the identity. The receiver's Exact
// mode is preserved.
func (im *IntMean) Merge(o *IntMean) {
	if o.n == 0 {
		return
	}
	if im.n == 0 {
		im.n, im.mean = o.n, o.mean
		im.DivisionsUsed += o.DivisionsUsed
		im.ComparesUsed += o.ComparesUsed
		return
	}
	total := im.n + o.n
	im.mean = (im.n*im.mean + o.n*o.mean) / total
	im.n = total
	im.DivisionsUsed += o.DivisionsUsed + 1
	im.ComparesUsed += o.ComparesUsed
}

// Mean returns the integer running mean.
func (im *IntMean) Mean() int64 { return im.mean }

// Count returns the number of observed samples.
func (im *IntMean) Count() int64 { return im.n }

// Features returns the mean as a float for the Reducer interface.
func (im *IntMean) Features() []float64 { return []float64{float64(im.mean)} }

// StateBytes reports 16 bytes (n + mean).
func (im *IntMean) StateBytes() int { return 16 }

// Reset clears the state and counters, preserving the Exact mode.
func (im *IntMean) Reset() {
	im.n, im.mean, im.DivisionsUsed, im.ComparesUsed = 0, 0, 0, 0
}
