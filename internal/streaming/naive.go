package streaming

import (
	"math"
	"sort"
)

// NaiveReducer is the store-everything counterpart of a streaming
// reducer: it buffers the complete sample stream and computes the
// feature with a multi-pass batch algorithm on demand. The paper's
// Figure 15 compares FE-NIC with streaming algorithms against this
// naïve re-implementation ("naïve algorithms ask for a large amount
// of on-chip memory, which exceeds the capacity of our SmartNICs").
type NaiveReducer struct {
	emit   Func
	params Params
	data   []int64
	tss    []int64 // timestamps, kept for the damped functions
}

// NewNaive constructs a naïve reducer computing f.
func NewNaive(f Func, p Params) *NaiveReducer {
	return &NaiveReducer{emit: f, params: p}
}

// Observe buffers the sample.
func (n *NaiveReducer) Observe(x int64) { n.data = append(n.data, x) }

// ObserveAt buffers the sample with its timestamp (damped functions
// recompute the full decayed sums at emit time from the buffer).
func (n *NaiveReducer) ObserveAt(x int64, ts int64) {
	n.data = append(n.data, x)
	n.tss = append(n.tss, ts)
}

// StateBytes reports the full buffered stream — this is what blows up
// the SmartNIC memory in the Figure 15 ablation.
func (n *NaiveReducer) StateBytes() int { return 8*len(n.data) + 8*len(n.tss) }

// Reset drops the buffer.
func (n *NaiveReducer) Reset() { n.data, n.tss = n.data[:0], n.tss[:0] }

// Features computes the feature with the batch algorithm.
func (n *NaiveReducer) Features() []float64 {
	switch n.emit {
	case FSum:
		var s int64
		for _, x := range n.data {
			s += x
		}
		return []float64{float64(s)}
	case FMean:
		return []float64{naiveMean(n.data)}
	case FVar:
		return []float64{naiveVar(n.data)}
	case FStd:
		return []float64{math.Sqrt(naiveVar(n.data))}
	case FMax:
		if len(n.data) == 0 {
			return []float64{0}
		}
		m := n.data[0]
		for _, x := range n.data[1:] {
			if x > m {
				m = x
			}
		}
		return []float64{float64(m)}
	case FMin:
		if len(n.data) == 0 {
			return []float64{0}
		}
		m := n.data[0]
		for _, x := range n.data[1:] {
			if x < m {
				m = x
			}
		}
		return []float64{float64(m)}
	case FSkew:
		return []float64{naiveStandardMoment(n.data, 3)}
	case FKurtosis:
		return []float64{naiveStandardMoment(n.data, 4) - 3}
	case FCard:
		set := make(map[int64]struct{}, len(n.data))
		for _, x := range n.data {
			set[x] = struct{}{}
		}
		return []float64{float64(len(set))}
	case FHist, FPDF, FCDF, FPercent:
		h := &Histogram{emit: n.emit, width: n.params.BinWidth, bins: make([]uint32, n.params.Bins), quantile: n.params.Quantile}
		for _, x := range n.data {
			h.Observe(x)
		}
		return h.Features()
	case FArray:
		maxLen := n.params.MaxLen
		if maxLen == 0 {
			maxLen = DefaultMaxArray
		}
		out := make([]float64, maxLen)
		for i, x := range n.data {
			if i >= maxLen {
				break
			}
			out[i] = float64(x)
		}
		return out
	case FMag, FRadius, FCov, FPCC:
		return []float64{naiveBidir(n.emit, n.data)}
	case FDWeight, FDMean, FDStd, FD2DMag, FD2DRadius, FD2DCov, FD2DPCC:
		return []float64{naiveDamped(n.emit, n.params.Lambda, n.data, n.tss)}
	}
	return []float64{0}
}

// naiveDamped replays the buffered (sample, timestamp) stream through
// a fresh damped window — the multi-pass equivalent of the streaming
// damped statistics.
func naiveDamped(f Func, lambda float64, data, tss []int64) float64 {
	if len(tss) != len(data) {
		// Samples observed without timestamps; treat as simultaneous.
		tss = make([]int64, len(data))
	}
	switch f {
	case FDWeight, FDMean, FDStd:
		w := DampedWelford{Lambda: lambda}
		for i, x := range data {
			w.ObserveAt(float64(x), tss[i])
		}
		switch f {
		case FDMean:
			return w.Mean()
		case FDStd:
			return w.Std()
		default:
			return w.Weight()
		}
	default:
		d := NewDamped2D(lambda)
		for i, x := range data {
			if x >= 0 {
				d.ObserveA(float64(x), tss[i])
			} else {
				d.ObserveB(float64(-x), tss[i])
			}
		}
		switch f {
		case FD2DRadius:
			return d.Radius()
		case FD2DCov:
			return d.Cov()
		case FD2DPCC:
			return d.PCC()
		default:
			return d.Magnitude()
		}
	}
}

// ExactQuantile computes the exact q-th quantile by sorting the
// buffered stream (what ft_percent approximates via the histogram).
func (n *NaiveReducer) ExactQuantile(q float64) float64 {
	if len(n.data) == 0 {
		return 0
	}
	sorted := append([]int64(nil), n.data...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx])
}

func naiveMean(data []int64) float64 {
	if len(data) == 0 {
		return 0
	}
	var s float64
	for _, x := range data {
		s += float64(x)
	}
	return s / float64(len(data))
}

func naiveVar(data []int64) float64 {
	if len(data) == 0 {
		return 0
	}
	m := naiveMean(data)
	var s float64
	for _, x := range data {
		d := float64(x) - m
		s += d * d
	}
	return s / float64(len(data))
}

// naiveStandardMoment computes the k-th standardised central moment
// E[(x-μ)^k]/σ^k with explicit passes, with the sqrt(n) skewness
// normalisation matching the streaming Moments implementation.
func naiveStandardMoment(data []int64, k int) float64 {
	if len(data) < 2 {
		return 0
	}
	m := naiveMean(data)
	v := naiveVar(data)
	if v == 0 {
		return 0
	}
	var s float64
	for _, x := range data {
		d := float64(x) - m
		p := d
		for i := 1; i < k; i++ {
			p *= d
		}
		s += p
	}
	n := float64(len(data))
	return (s / n) / math.Pow(v, float64(k)/2)
}

// naiveBidir splits the signed stream into forward/backward and
// computes the exact 2D statistic.
func naiveBidir(f Func, data []int64) float64 {
	var fwd, bwd []int64
	for _, x := range data {
		if x >= 0 {
			fwd = append(fwd, x)
		} else {
			bwd = append(bwd, -x)
		}
	}
	mf, mb := naiveMean(fwd), naiveMean(bwd)
	vf, vb := naiveVar(fwd), naiveVar(bwd)
	switch f {
	case FMag:
		return math.Sqrt(mf*mf + mb*mb)
	case FRadius:
		return math.Sqrt(vf*vf + vb*vb)
	case FCov, FPCC:
		// Exact covariance over index-paired samples (truncated to the
		// shorter stream).
		n := len(fwd)
		if len(bwd) < n {
			n = len(bwd)
		}
		if n == 0 {
			return 0
		}
		var sp float64
		for i := 0; i < n; i++ {
			sp += (float64(fwd[i]) - mf) * (float64(bwd[i]) - mb)
		}
		cov := sp / float64(n)
		if f == FCov {
			return cov
		}
		denom := math.Sqrt(vf) * math.Sqrt(vb)
		if denom == 0 {
			return 0
		}
		p := cov / denom
		return math.Max(-1, math.Min(1, p))
	}
	return 0
}
