package streaming

import (
	"math"
	"testing"
)

func TestDampedNoDecayEqualsPlainStats(t *testing.T) {
	// All samples at the same timestamp: damped == plain statistics.
	d := DampedWelford{Lambda: 1}
	w := &Welford{}
	for _, x := range []int64{2, 4, 4, 4, 5, 5, 7, 9} {
		d.ObserveAt(float64(x), 0)
		w.Observe(x)
	}
	if !approx(d.Mean(), w.Mean(), tol) {
		t.Errorf("mean: damped %g vs plain %g", d.Mean(), w.Mean())
	}
	if !approx(d.Var(), w.Var(), tol) {
		t.Errorf("var: damped %g vs plain %g", d.Var(), w.Var())
	}
	if !approx(d.Weight(), 8, tol) {
		t.Errorf("weight = %g, want 8", d.Weight())
	}
}

func TestDampedHalving(t *testing.T) {
	// λ=1/s: after exactly 1s the weight halves (2^-1).
	d := DampedWelford{Lambda: 1}
	d.ObserveAt(100, 0)
	if !approx(d.Weight(), 1, tol) {
		t.Fatalf("weight after first sample = %g", d.Weight())
	}
	d.ObserveAt(100, 1_000_000_000)
	// Old weight 1 decayed to 0.5, plus the new sample.
	if !approx(d.Weight(), 1.5, tol) {
		t.Errorf("weight after 1s = %g, want 1.5", d.Weight())
	}
}

func TestDampedForgetsOldTraffic(t *testing.T) {
	d := DampedWelford{Lambda: 5}
	// A burst of large packets, then much later small packets.
	for i := 0; i < 50; i++ {
		d.ObserveAt(1500, int64(i)*1e6)
	}
	for i := 0; i < 50; i++ {
		d.ObserveAt(60, 10_000_000_000+int64(i)*1e6)
	}
	if m := d.Mean(); math.Abs(m-60) > 1 {
		t.Errorf("after 10s idle the mean should be ≈60, got %g", m)
	}
}

func TestDampedOutOfOrderTimestampsSafe(t *testing.T) {
	d := DampedWelford{Lambda: 1}
	d.ObserveAt(10, 1e9)
	d.ObserveAt(20, 5e8) // out of order: decay must not go negative
	if d.Weight() < 1.9 {
		t.Errorf("out-of-order sample mishandled: w=%g", d.Weight())
	}
}

func TestDamped2DDirectionalSplit(t *testing.T) {
	d := NewDamped2D(1)
	for i := 0; i < 100; i++ {
		d.ObserveA(1000, int64(i)*1e6)
		d.ObserveB(100, int64(i)*1e6)
	}
	mag := d.Magnitude()
	want := math.Sqrt(1000*1000 + 100*100)
	if !approx(mag, want, 1e-6) {
		t.Errorf("magnitude = %g, want %g", mag, want)
	}
	if r := d.Radius(); r > 1e-6 {
		t.Errorf("constant streams must have ~0 radius, got %g", r)
	}
}

func TestDamped2DPCCBounds(t *testing.T) {
	d := NewDamped2D(0.5)
	for i := 0; i < 500; i++ {
		v := float64(i%17) * 100
		d.ObserveA(v, int64(i)*1e6)
		d.ObserveB(v+10, int64(i)*1e6+1000)
	}
	p := d.PCC()
	if p < -1 || p > 1 {
		t.Fatalf("pcc out of bounds: %g", p)
	}
	if p < 0.5 {
		t.Errorf("strongly correlated streams give pcc %g", p)
	}
}

func TestDamped1DReducerModes(t *testing.T) {
	for _, c := range []struct {
		f    Func
		want float64
	}{
		{FDWeight, 4},
		{FDMean, 5},
		{FDStd, 0},
	} {
		r := NewDamped1D(c.f, 1)
		for i := 0; i < 4; i++ {
			r.ObserveAt(5, 0)
		}
		if !approx(r.Features()[0], c.want, tol) {
			t.Errorf("%s = %g, want %g", c.f, r.Features()[0], c.want)
		}
	}
}

func TestDamped2DReducerSignConvention(t *testing.T) {
	r := NewDamped2DReducer(FD2DMag, 1)
	r.ObserveAt(300, 0)  // forward
	r.ObserveAt(-400, 0) // backward, magnitude 400
	want := math.Sqrt(300*300 + 400*400)
	if !approx(r.Features()[0], want, tol) {
		t.Errorf("magnitude = %g, want %g (sign convention broken)", r.Features()[0], want)
	}
}

func TestNaiveDampedMatchesStreaming(t *testing.T) {
	// The naive replay of damped stats must agree with the streaming
	// computation (same algorithm, buffered).
	for _, f := range []Func{FDWeight, FDMean, FDStd, FD2DMag, FD2DRadius, FD2DCov, FD2DPCC} {
		s, err := New(f, Params{Lambda: 2})
		if err != nil {
			t.Fatal(err)
		}
		n := NewNaive(f, Params{Lambda: 2})
		ts := int64(0)
		for i := 0; i < 200; i++ {
			x := int64((i%13)*50 - 300)
			s.(TimedReducer).ObserveAt(x, ts)
			n.ObserveAt(x, ts)
			ts += 3e6
		}
		if !approx(s.Features()[0], n.Features()[0], 1e-9) {
			t.Errorf("%s: streaming %g vs naive replay %g", f, s.Features()[0], n.Features()[0])
		}
	}
}

func TestIntMeanDivisionElimination(t *testing.T) {
	exact := &IntMean{Exact: true}
	elim := &IntMean{}
	for i := int64(0); i < 10000; i++ {
		x := 500 + (i % 100)
		exact.Observe(x)
		elim.Observe(x)
	}
	// The optimized mean must track the exact mean closely.
	if math.Abs(float64(exact.Mean()-elim.Mean())) > 5 {
		t.Errorf("division-free mean drifted: exact %d vs elim %d", exact.Mean(), elim.Mean())
	}
	// And must use drastically fewer divisions (>98% eliminated —
	// the measurement the cost model's 2% residue constant encodes).
	if elim.DivisionsUsed*50 > exact.DivisionsUsed {
		t.Errorf("division elimination ineffective: %d vs %d", elim.DivisionsUsed, exact.DivisionsUsed)
	}
	if elim.ComparesUsed == 0 {
		t.Error("no compares recorded")
	}
}

func TestIntMeanOutliers(t *testing.T) {
	im := &IntMean{}
	for i := 0; i < 100; i++ {
		im.Observe(10)
	}
	im.Observe(1_000_000) // outlier takes the real-division path
	if im.DivisionsUsed < 1 {
		t.Error("outlier should have used a division")
	}
	if im.Mean() < 10 || im.Mean() > 20000 {
		t.Errorf("mean after outlier implausible: %d", im.Mean())
	}
}

func TestProvisionedBytes(t *testing.T) {
	if ProvisionedBytes(FArray, Params{MaxLen: 5000}) != 512 {
		t.Error("array must provision a fixed resident window")
	}
	if ProvisionedBytes(FDMean, Params{Lambda: 1}) != 16 {
		t.Error("damped 1D packs to 16B")
	}
	if ProvisionedBytes(FSum, Params{}) != 16 {
		t.Error("sum is 16B")
	}
	if ProvisionedBytes(FHist, Params{BinWidth: 10, Bins: 4}) != 4*4+8 {
		t.Errorf("hist provision = %d", ProvisionedBytes(FHist, Params{BinWidth: 10, Bins: 4}))
	}
}

func TestIsTimed(t *testing.T) {
	if IsTimed(FMean) {
		t.Error("f_mean is not timed")
	}
	for _, f := range []Func{FDWeight, FDMean, FDStd, FD2DMag, FD2DRadius, FD2DCov, FD2DPCC} {
		if !IsTimed(f) {
			t.Errorf("%s must be timed", f)
		}
	}
}
