// Intrusion detection end to end: Kitsune's 115-dimension feature
// extractor deployed on SuperFE, feeding its autoencoder-ensemble
// detector — the paper's §8.3 application study on the Mirai
// scenario. The example trains the ensemble online on the benign
// prefix of the traffic and reports detection quality over the attack
// window.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"superfe/examples/policies"
	"superfe/internal/core"
	"superfe/internal/feature"
	"superfe/internal/mlsim"
	"superfe/internal/trace"
)

func main() {
	// Synthesize an IoT network with a Mirai-style infection: rapid
	// telnet SYN fan-out from compromised cameras.
	cfg := trace.DefaultIntrusionConfig(trace.AttackMirai)
	tr := trace.GenerateIntrusion(cfg, 42)
	fmt.Printf("trace: %s — %s\n", tr.Name, tr.Stats())

	// Ground truth lookup for scoring.
	labels := map[uint64]uint8{}
	for i := range tr.Packets {
		canon, _ := tr.Packets[i].Tuple.Canonical()
		labels[uint64(canon.SrcIP)<<32|uint64(uint32(tr.Packets[i].Timestamp))] = tr.Labels[i]
	}

	// Deploy Kitsune's extractor on SuperFE.
	pol := policies.Intrusion()
	type sample struct {
		vec   []float64
		ts    int64
		label uint8
	}
	var samples []sample
	fe, err := core.New(core.DefaultOptions(), pol, func(v feature.Vector) {
		canon, _ := v.Key.Tuple.Canonical()
		lbl, ok := labels[uint64(canon.SrcIP)<<32|uint64(uint32(v.Timestamp))]
		if !ok {
			return
		}
		samples = append(samples, sample{append([]float64(nil), v.Values...), v.Timestamp, lbl})
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := range tr.Packets {
		fe.Process(&tr.Packets[i])
	}
	fe.Flush()
	sort.SliceStable(samples, func(i, j int) bool { return samples[i].ts < samples[j].ts })
	fmt.Printf("extracted %d feature vectors (dim %d), aggregation ratio %.4f\n",
		len(samples), pol.FeatureDim(), fe.SwitchStats().AggregationRatio())

	// Train the ensemble online on the pre-attack benign prefix.
	ens, err := mlsim.NewKitsuneEnsemble(pol.FeatureDim(), rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	const attackStart = int64(5e8)
	var scores []float64
	var truth []uint8
	for _, s := range samples {
		if s.ts < attackStart*9/10 && s.label == 0 {
			ens.Train(s.vec)
			continue
		}
		scores = append(scores, ens.Score(s.vec))
		truth = append(truth, s.label)
	}
	m := mlsim.EvaluateScores(scores, truth)
	fmt.Printf("trained on %d benign vectors, scored %d\n", ens.Trained(), len(scores))
	fmt.Printf("detection: AUC %.3f, accuracy %.3f (TPR %.3f / FPR %.3f) at threshold %.4f\n",
		m.AUC, m.Accuracy, m.TPR, m.FPR, m.Threshold)
}
