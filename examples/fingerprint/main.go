// Website fingerprinting end to end: the TF direction-sequence
// extractor (Figure 5 of the paper) deployed on SuperFE, feeding a
// closed-world website classifier. Visits to a set of synthetic
// sites are replayed through the pipeline; per-connection direction
// sequences come out; a nearest-centroid classifier (standing in for
// TF's triplet network) identifies the visited site.
package main

import (
	"fmt"
	"log"

	"superfe/examples/policies"
	"superfe/internal/core"
	"superfe/internal/feature"
	"superfe/internal/mlsim"
	"superfe/internal/trace"
)

func main() {
	cfg := trace.WebsiteConfig{Sites: 15, VisitsPerSite: 16, BurstsPerVisit: 12}
	tr := trace.GenerateWebsites(cfg, 7)
	fmt.Printf("trace: %d sites × %d visits, %d packets\n",
		cfg.Sites, cfg.VisitsPerSite, len(tr.Packets))

	pol := policies.Fingerprint()
	var vecs []feature.Vector
	fe, err := core.New(core.DefaultOptions(), pol, feature.Collect(&vecs))
	if err != nil {
		log.Fatal(err)
	}
	for i := range tr.Packets {
		fe.Process(&tr.Packets[i])
	}
	fe.Flush()
	fmt.Printf("extracted %d direction sequences (dim %d)\n", len(vecs), pol.FeatureDim())

	// Split visits into train/test per site and classify.
	var trainX, testX [][]float64
	var trainY, testY []int
	perSite := map[int]int{}
	for _, v := range vecs {
		canon, _ := v.Key.Tuple.Canonical()
		site, ok := tr.FlowClasses[canon]
		if !ok {
			continue
		}
		perSite[site]++
		if perSite[site]%2 == 0 {
			trainX = append(trainX, v.Values)
			trainY = append(trainY, site)
		} else {
			testX = append(testX, v.Values)
			testY = append(testY, site)
		}
	}
	clf := mlsim.NewCentroid()
	if err := clf.Fit(trainX, trainY); err != nil {
		log.Fatal(err)
	}
	pred := make([]int, len(testX))
	for i, x := range testX {
		pred[i] = clf.Predict(x)
	}
	acc := mlsim.ClassificationAccuracy(pred, testY)
	fmt.Printf("closed-world classification: %d train / %d test visits, accuracy %.3f (chance %.3f)\n",
		len(trainX), len(testX), acc, 1/float64(cfg.Sites))
}
