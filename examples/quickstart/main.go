// Quickstart: write a feature-extraction policy with the SuperFE
// operators, deploy it onto the simulated switch + SmartNIC pipeline,
// replay a synthetic workload, and print the resulting feature
// vectors — the minimal end-to-end tour of the Figure 1 workflow.
package main

import (
	"fmt"
	"log"

	"superfe/examples/policies"
	"superfe/internal/core"
	"superfe/internal/feature"
	"superfe/internal/trace"
)

func main() {
	// 1. Write the policy: the paper's Figure 3 basic statistical
	// features — per TCP flow, packet count plus size and
	// inter-packet-time statistics. The operator chain lives in the
	// examples/policies registry so `superfe-vet -plans` can verify
	// it fits the hardware envelope without running this program.
	pol := policies.Quickstart()
	fmt.Println("Policy source:")
	fmt.Println(pol.Source())

	// 2. Deploy it: policy → FE-Switch (MGPV batching) + FE-NIC
	// (streaming feature computation).
	var vecs []feature.Vector
	fe, err := core.New(core.DefaultOptions(), pol, feature.Collect(&vecs))
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	fmt.Println("Generated FE-Switch program:")
	fmt.Println(fe.Plan().P4Listing())
	fmt.Println("Generated FE-NIC program:")
	fmt.Println(fe.Plan().MicroCListing())

	// 3. Replay traffic through the pipeline.
	cfg := trace.EnterpriseConfig
	cfg.Flows = 2000
	tr := trace.Generate(cfg, 1)
	for i := range tr.Packets {
		fe.Process(&tr.Packets[i])
	}
	fe.Flush()

	// 4. Inspect the results.
	sw := fe.SwitchStats()
	fmt.Printf("switch: %d packets in (%d filtered), aggregation ratio %.4f\n",
		sw.PktsIn, sw.PktsFiltered, sw.AggregationRatio())
	fmt.Printf("NIC: %d MGPVs, %d cells, %d feature vectors\n\n",
		fe.NICStats().MGPVs, fe.NICStats().Cells, len(vecs))
	fmt.Println("first five feature vectors (count, size μ/σ²/min/max, ipt μ/σ²/min/max):")
	for _, v := range vecs[:min(5, len(vecs))] {
		fmt.Printf("  %-45s %v\n", v.Key, rounded(v.Values))
	}
}

func rounded(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int64(x*100)) / 100
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
