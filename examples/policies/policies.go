// Package policies is the registry of every policy the example
// programs deploy. The example mains pull their policies from here
// instead of constructing them inline, so `superfe-vet -plans
// ./examples/...` can compile and statically verify each one against
// the switch/NIC resource model (internal/planvet) without executing
// the examples — package main is not importable, a registry is.
//
// Adding an example? Register its policy here and build it via the
// registry in the example's main; CI rejects plans that exceed the
// hardware envelope before they ever run.
package policies

import (
	"superfe/internal/apps"
	"superfe/internal/flowkey"
	"superfe/internal/packet"
	"superfe/internal/planprove"
	"superfe/internal/policy"
	"superfe/internal/streaming"
)

// Entry names one example policy and the example package that
// deploys it.
type Entry struct {
	Name  string // plan name in superfe-vet -plans output
	Pkg   string // module-relative package that deploys the policy
	Build func() *policy.Policy
}

// Registry returns every example policy, one per example program.
func Registry() []Entry {
	return []Entry{
		{"quickstart", "examples/quickstart", Quickstart},
		{"fingerprint", "examples/fingerprint", Fingerprint},
		{"covert", "examples/covert", Covert},
		{"intrusion", "examples/intrusion", Intrusion},
	}
}

// Quickstart is the Figure 3 basic statistical policy the quickstart
// walks through: per TCP flow, packet count plus size and
// inter-packet-time statistics.
func Quickstart() *policy.Policy {
	return policy.New("quickstart").
		Filter(policy.TCPExists()).
		GroupBy(flowkey.GranFlow).
		Map("one", policy.SrcNone, policy.MapOne).
		Reduce("one", policy.RF(streaming.FSum)).
		Collect().
		Reduce("size",
			policy.RF(streaming.FMean), policy.RF(streaming.FVar),
			policy.RF(streaming.FMin), policy.RF(streaming.FMax)).
		Collect().
		Map("ipt", policy.SrcField(packet.FieldTimestamp), policy.MapIPT).
		Reduce("ipt",
			policy.RF(streaming.FMean), policy.RF(streaming.FVar),
			policy.RF(streaming.FMin), policy.RF(streaming.FMax)).
		Collect().
		MustBuild()
}

// Fingerprint is the website-fingerprinting example's policy: the TF
// direction-sequence extractor from the Table 3 catalog.
func Fingerprint() *policy.Policy { return apps.TF() }

// Covert is the covert-channel example's policy: the NPOD
// inter-packet-time distribution extractor.
func Covert() *policy.Policy { return apps.NPOD() }

// Intrusion is the intrusion-detection example's policy: the Kitsune
// multi-granularity damped-statistics extractor.
func Intrusion() *policy.Policy { return apps.Kitsune() }

// Waivers returns the documented planprove waivers for the example
// registry. Aliased catalog policies (covert = NPOD, intrusion =
// Kitsune) inherit the catalog's waiver reasons under their example
// plan names; quickstart documents its own ipt lane saturation.
func Waivers() []planprove.Waiver {
	alias := map[string]string{"NPOD": "covert", "Kitsune": "intrusion"}
	ws := []planprove.Waiver{{
		Plan:   "quickstart",
		Class:  planprove.ClassFixedPoint,
		Reason: "ipt mean/var saturate the 32-bit lane only for inter-packet gaps past ~2.1s; the quickstart trace generator emits sub-second gaps and the walkthrough documents the bound",
	}}
	for _, w := range apps.Waivers() {
		if name, ok := alias[w.Plan]; ok {
			w.Plan = name
			ws = append(ws, w)
		}
	}
	return ws
}
