// Covert-channel detection end to end: the NPOD distribution
// extractor (the paper's Figure 4 policy family) deployed on SuperFE,
// feeding a decision tree that separates timing covert channels from
// regular flows by their inter-packet-time histograms.
package main

import (
	"fmt"
	"log"

	"superfe/examples/policies"
	"superfe/internal/core"
	"superfe/internal/feature"
	"superfe/internal/flowkey"
	"superfe/internal/mlsim"
	"superfe/internal/trace"
)

func main() {
	cfg := trace.CovertConfig{CovertFlows: 60, NormalFlows: 240, BitsPerFlow: 64}
	tr := trace.GenerateCovert(cfg, 9)
	fmt.Printf("trace: %d covert + %d normal flows, %d packets\n",
		cfg.CovertFlows, cfg.NormalFlows, len(tr.Packets))

	// Ground truth per flow.
	covert := map[flowkey.FiveTuple]bool{}
	for i := range tr.Packets {
		if tr.Labels[i] == 1 {
			covert[tr.Packets[i].Tuple] = true
		}
	}

	pol := policies.Covert()
	var vecs []feature.Vector
	fe, err := core.New(core.DefaultOptions(), pol, feature.Collect(&vecs))
	if err != nil {
		log.Fatal(err)
	}
	for i := range tr.Packets {
		fe.Process(&tr.Packets[i])
	}
	fe.Flush()
	fmt.Printf("extracted %d per-flow distribution vectors (dim %d)\n", len(vecs), pol.FeatureDim())

	// Train/test split and classification.
	var trainX, testX [][]float64
	var trainY, testY []int
	for i, v := range vecs {
		lbl := 0
		if covert[v.Key.Tuple] {
			lbl = 1
		}
		if i%2 == 0 {
			trainX = append(trainX, v.Values)
			trainY = append(trainY, lbl)
		} else {
			testX = append(testX, v.Values)
			testY = append(testY, lbl)
		}
	}
	dt := mlsim.NewDecisionTree(6, 2)
	if err := dt.Fit(trainX, trainY); err != nil {
		log.Fatal(err)
	}
	pred := make([]int, len(testX))
	tp, fp, fn := 0, 0, 0
	for i, x := range testX {
		pred[i] = dt.Predict(x)
		switch {
		case pred[i] == 1 && testY[i] == 1:
			tp++
		case pred[i] == 1 && testY[i] == 0:
			fp++
		case pred[i] == 0 && testY[i] == 1:
			fn++
		}
	}
	acc := mlsim.ClassificationAccuracy(pred, testY)
	fmt.Printf("decision tree: accuracy %.3f, %d TP / %d FP / %d FN over %d test flows\n",
		acc, tp, fp, fn, len(testX))
}
