module superfe

go 1.22
