// Command superfe-vet runs SuperFE's project-specific vet suite —
// the analyzers in internal/lint that mechanically enforce the
// hot-path allocation, determinism, stats-merge and panic-discipline
// invariants. CI runs it on every PR; run it locally with:
//
//	go run ./cmd/superfe-vet ./...
//
// Usage:
//
//	superfe-vet [-analyzers a,b,...] [-json] [-fix-hints] [packages]
//	superfe-vet -plans [-json] [patterns]
//
// Packages default to ./... relative to the working directory. The
// exit status is 1 when any diagnostic is reported, 2 on driver
// errors.
//
// -plans switches from source analysis to plan feasibility: every
// registered policy (the Table 3 catalog in internal/apps plus the
// example registry in examples/policies) whose home package matches a
// pattern is compiled and checked against the switch/NIC hardware
// envelope (internal/planvet), and a per-plan cost report is printed.
// CI runs `superfe-vet -plans ./examples/...` so an example whose
// plan outgrows the pipeline fails the build with a diagnostic naming
// the violated resource.
//
// -prove (with -plans) additionally gates on the planprove
// value-range proofs: each plan's abstract-interpretation findings
// are printed with their concrete witnesses, matched against the
// documented waiver catalogs (apps.Waivers, policies.Waivers), and
// any unwaived warning-or-worse finding fails the run. CI runs
// `superfe-vet -plans -prove` so a plan that can saturate a register,
// clamp a histogram unexpectedly, or overflow a fixed-point lane is
// rejected with a value-range witness before it ships.
//
// -json emits findings (or plan reports under -plans, proofs
// included) as a JSON array on stdout for tooling; -fix-hints appends
// a remediation hint to each source finding and to each unwaived
// proof finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"superfe/examples/policies"
	"superfe/internal/apps"
	"superfe/internal/lint"
	"superfe/internal/lint/analysis"
	"superfe/internal/lint/loader"
	"superfe/internal/planprove"
	"superfe/internal/planvet"
	"superfe/internal/policy"
)

func main() {
	os.Exit(run())
}

func run() int {
	sel := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	plans := flag.Bool("plans", false, "check registered policy plans against the hardware model instead of analyzing source")
	prove := flag.Bool("prove", false, "with -plans: gate on the planprove value-range proofs (unwaived warnings fail)")
	jsonOut := flag.Bool("json", false, "emit findings (or plan reports) as JSON on stdout")
	hints := flag.Bool("fix-hints", false, "append a remediation hint to each finding")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: superfe-vet [-analyzers a,b] [-json] [-fix-hints] [packages]\n"+
			"       superfe-vet -plans [-prove] [-json] [-fix-hints] [patterns]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *plans {
		return runPlans(flag.Args(), *prove, *jsonOut, *hints)
	}
	if *prove {
		fmt.Fprintln(os.Stderr, "superfe-vet: -prove requires -plans")
		return 2
	}

	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers := all
	if *sel != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*sel, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "superfe-vet: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	prog, err := loader.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "superfe-vet:", err)
		return 2
	}
	targets := map[string]bool{}
	for _, t := range prog.Targets {
		targets[t] = true
	}

	type finding struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Message  string `json:"message"`
		Analyzer string `json:"analyzer"`
		Hint     string `json:"hint,omitempty"`
	}
	type seenKey struct {
		pos, msg string
	}
	seen := map[seenKey]bool{}
	var findings []finding
	for _, pkg := range prog.Packages {
		if !targets[pkg.Path] {
			continue
		}
		for _, a := range analyzers {
			a := a
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Prog:      prog,
			}
			pass.Report = func(d analysis.Diagnostic) {
				p := prog.Fset.Position(d.Pos)
				k := seenKey{pos: p.String(), msg: d.Message + a.Name}
				// Cross-package traversal (hotpathalloc) can reach the
				// same callee from several roots; report each site once.
				if seen[k] {
					return
				}
				seen[k] = true
				f := finding{File: p.Filename, Line: p.Line, Col: p.Column, Message: d.Message, Analyzer: a.Name}
				if *hints {
					f.Hint = fixHints[a.Name]
				}
				findings = append(findings, f)
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "superfe-vet: %s: %s: %v\n", a.Name, pkg.Path, err)
				return 2
			}
		}
	}
	// Full-key sort: several analyzers can report at the same position,
	// and map-driven traversal inside an analyzer may emit them in any
	// order — the analyzer and message tiebreaks make the output (and
	// the problem-matcher annotations CI diffs) byte-stable across runs.
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "superfe-vet:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
			if f.Hint != "" {
				fmt.Printf("\thint: %s\n", f.Hint)
			}
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "superfe-vet: %d finding(s) in %d package(s)\n", len(findings), len(prog.Targets))
		return 1
	}
	if !*jsonOut {
		fmt.Printf("superfe-vet: %d package(s) clean (%d analyzers)\n", len(prog.Targets), len(analyzers))
	}
	return 0
}

// fixHints maps each analyzer to its standard remediation, printed
// under -fix-hints and carried in the JSON output.
var fixHints = map[string]string{
	"hotpathalloc":     "hoist the allocation out of the per-packet path (reuse a buffer, preallocate in the constructor) or waive an intentional one with //superfe:alloc-ok <reason>",
	"nowallclock":      "derive time from packet timestamps and order from sequence numbers; use a seeded rand.Rand; sort map keys before iterating or waive with //superfe:unordered <reason>",
	"statsmerge":       "reference every field in Merge/Add/Reset/DeltaFrom (or drop the field); a field a merge forgets silently corrupts aggregated stats",
	"panicdiscipline":  "prefix the panic message with \"superfe: \" so operators can attribute crashes, or return an error instead",
	"atomicdiscipline": "access the field through sync/atomic everywhere (or guard all access with one mutex), pass lock-bearing structs by pointer, and waive single-threaded phases with //superfe:atomic-ok <reason>",
	"goroutineleak":    "give the goroutine a shutdown edge — range over a channel that is closed, select on ctx.Done(), or signal a WaitGroup — or waive a process-lifetime worker with //superfe:goroutine-ok <reason>",
	"sinkretention":    "copy borrowed slices before storing them (dst = append(dst[:0], src...)); the extractor reuses the backing array after the sink returns; waive owned-message topologies with //superfe:retain-ok <reason>",
	"memmodelatomic":   "access the field through sync/atomic in every package that touches it; construction-phase writes through a function-local value are exempt, other single-threaded phases waive with //superfe:atomic-ok <reason>",
	"memmodelrole":     "keep each SPSC sequence field written by exactly one side: move the write into a //superfe:producer or //superfe:consumer function (or annotate the writer with its real role)",
	"memmodelpublish":  "publish slot payloads with store-index-then-release: write the slot, then store the sequence atomically; read the sequence atomically before reading the slot; waive externally-ordered sites with //superfe:publish-ok <reason>",
	"memmodelpad":      "hold //superfe:padded structs by pointer everywhere (fields, slices, parameters) and make every pad a full _ [64]byte cache line",
}

// planEntry is one registered policy: the Table 3 catalog plus the
// example registry.
type planEntry struct {
	Name  string
	Pkg   string
	Build func() *policy.Policy
}

func planRegistry() []planEntry {
	var entries []planEntry
	for _, e := range apps.Catalog() {
		entries = append(entries, planEntry{Name: e.Name, Pkg: "internal/apps", Build: e.Build})
	}
	for _, e := range policies.Registry() {
		entries = append(entries, planEntry{Name: e.Name, Pkg: e.Pkg, Build: e.Build})
	}
	// Registration order is an implementation detail of the catalogs;
	// sort so -plans output (and CI diffs of it) is stable across runs.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Pkg != entries[j].Pkg {
			return entries[i].Pkg < entries[j].Pkg
		}
		return entries[i].Name < entries[j].Name
	})
	return entries
}

// matchPattern matches a module-relative package path against a
// go-style pattern: "./..." and "" match everything, a trailing
// "/..." matches the prefix, anything else matches exactly.
func matchPattern(pkg, pattern string) bool {
	pattern = strings.TrimPrefix(pattern, "./")
	if pattern == "..." || pattern == "" {
		return true
	}
	if rest, ok := strings.CutSuffix(pattern, "/..."); ok {
		return pkg == rest || strings.HasPrefix(pkg, rest+"/")
	}
	return pkg == pattern
}

// proveHints maps each planprove finding class to its standard
// remediation, mirroring fixHints for the source analyzers.
var proveHints = map[string]string{
	planprove.ClassHistRange:    "widen the histogram (more bins or a larger bin width) to cover the proved input range, bound the input with a filter predicate, or waive the designed tail clamp with a documented Waiver",
	planprove.ClassFixedPoint:   "bound the reducer input with a filter predicate, pre-scale it with a mapping stage, or waive the saturation with a Waiver documenting the operational envelope",
	planprove.ClassMapOverflow:  "bound the f_speed source field with a filter predicate so size×1e9 stays inside int64",
	planprove.ClassCellRegister: "batch a narrower field or drop it from the metadata layout; only fields inside their register width deploy without saturation",
	planprove.ClassFGIndex:      "shrink Config.FGTableSize to 32768 or fewer entries; the wire cell header has 15 index bits",
}

// runPlans implements -plans: compile every registered policy whose
// home package matches a pattern and check the plan against the
// hardware model. Under prove, the planprove value-range findings
// gate too: every warning-or-worse finding must carry a documented
// waiver from the policy catalogs.
func runPlans(patterns []string, prove, jsonOut, hints bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	waivers := append(apps.Waivers(), policies.Waivers()...)
	model := planvet.DefaultModel()
	var reports []*planvet.Report
	infeasible, unsafe, waived := 0, 0, 0
	for _, e := range planRegistry() {
		matched := false
		for _, p := range patterns {
			if matchPattern(e.Pkg, p) {
				matched = true
				break
			}
		}
		if !matched {
			continue
		}
		r, err := planvet.CheckPolicy(model, e.Name, e.Build())
		if err != nil {
			fmt.Fprintln(os.Stderr, "superfe-vet:", err)
			return 2
		}
		reports = append(reports, r)
		if !r.Feasible() {
			infeasible++
		}
		if prove && len(r.Proof.Unwaived(waivers)) > 0 {
			unsafe++
		}
	}
	if len(reports) == 0 {
		fmt.Fprintf(os.Stderr, "superfe-vet: no registered plans match %v\n", patterns)
		return 2
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintln(os.Stderr, "superfe-vet:", err)
			return 2
		}
	} else {
		for _, r := range reports {
			fmt.Print(r.String())
			if prove {
				waived += printProof(r.Proof, waivers, hints)
			}
		}
	}
	if infeasible > 0 || unsafe > 0 {
		fmt.Fprintf(os.Stderr, "superfe-vet: %d of %d plan(s) infeasible, %d unproved\n",
			infeasible, len(reports), unsafe)
		return 1
	}
	if !jsonOut {
		if prove {
			fmt.Printf("superfe-vet: %d plan(s) feasible and proved (%d waived finding(s))\n", len(reports), waived)
		} else {
			fmt.Printf("superfe-vet: %d plan(s) feasible\n", len(reports))
		}
	}
	return 0
}

// printProof renders the prove section for one plan: the verdict,
// then every warning-or-worse finding with its witness, waiver status
// and optional fix hint. The proved site ranges stay implicit here —
// they are in the -json output. Returns the number of waived
// findings.
func printProof(p *planprove.Result, waivers []planprove.Waiver, hints bool) int {
	if unwaived := p.Unwaived(waivers); len(unwaived) > 0 {
		fmt.Printf("prove %-10s UNSAFE (%d unwaived finding(s))\n", p.Plan, len(unwaived))
	} else {
		fmt.Printf("prove %-10s PROVED (%d site(s))\n", p.Plan, len(p.Ranges))
	}
	waived := 0
	for _, f := range p.Findings {
		if f.Sev < planprove.SevWarn {
			continue
		}
		fmt.Printf("  %-5s %s %s: %s\n", f.Sev, f.Class, f.Site, f.Detail)
		if w := f.Witness; w != nil {
			state := "unconfirmed"
			if w.Confirmed {
				state = fmt.Sprintf("replayable, %d packet(s)", len(w.Packets))
			}
			fmt.Printf("        witness: %s = %d against bound %d under %s ∈ %s (%s)\n",
				w.Var, w.Value, w.Bound, w.Var, w.Input, state)
		}
		if w, ok := planprove.WaiverFor(f, waivers); ok {
			waived++
			fmt.Printf("        waived: %s\n", w.Reason)
			continue
		}
		if hints {
			if h := proveHints[f.Class]; h != "" {
				fmt.Printf("        hint: %s\n", h)
			}
		}
	}
	return waived
}
