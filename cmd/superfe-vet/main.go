// Command superfe-vet runs SuperFE's project-specific vet suite —
// the analyzers in internal/lint that mechanically enforce the
// hot-path allocation, determinism, stats-merge and panic-discipline
// invariants. CI runs it on every PR; run it locally with:
//
//	go run ./cmd/superfe-vet ./...
//
// Usage:
//
//	superfe-vet [-analyzers a,b,...] [packages]
//
// Packages default to ./... relative to the working directory. The
// exit status is 1 when any diagnostic is reported, 2 on driver
// errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"superfe/internal/lint"
	"superfe/internal/lint/analysis"
	"superfe/internal/lint/loader"
)

func main() {
	os.Exit(run())
}

func run() int {
	sel := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: superfe-vet [-analyzers a,b] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers := all
	if *sel != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*sel, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "superfe-vet: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	prog, err := loader.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "superfe-vet:", err)
		return 2
	}
	targets := map[string]bool{}
	for _, t := range prog.Targets {
		targets[t] = true
	}

	type finding struct {
		pos string
		msg string
	}
	seen := map[finding]bool{}
	var findings []finding
	for _, pkg := range prog.Packages {
		if !targets[pkg.Path] {
			continue
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Prog:      prog,
			}
			pass.Report = func(d analysis.Diagnostic) {
				f := finding{
					pos: prog.Fset.Position(d.Pos).String(),
					msg: fmt.Sprintf("%s [%s]", d.Message, a.Name),
				}
				// Cross-package traversal (hotpathalloc) can reach the
				// same callee from several roots; report each site once.
				if !seen[f] {
					seen[f] = true
					findings = append(findings, f)
				}
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "superfe-vet: %s: %s: %v\n", a.Name, pkg.Path, err)
				return 2
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		fmt.Printf("%s: %s\n", f.pos, f.msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "superfe-vet: %d finding(s) in %d package(s)\n", len(findings), len(prog.Targets))
		return 1
	}
	fmt.Printf("superfe-vet: %d package(s) clean (%d analyzers)\n", len(prog.Targets), len(analyzers))
	return 0
}
