// Command benchrun measures the parallel pipeline's steady-state
// per-packet cost and persists the result as a BENCH_<n>.json record
// — the repo's committed performance trajectory (see DESIGN.md §11).
// It wraps the same workload as BenchmarkParallelPipeline in
// bench_test.go (NPOD policy over the seeded ENTERPRISE trace, full
// warmup pass, then a timed Process loop) behind testing.Benchmark,
// so the numbers line up with `go test -bench`.
//
// Usage:
//
//	benchrun -workers 1 -short                 # measure, print JSON
//	benchrun -workers 1 -short -save           # append BENCH_<n+1>.json
//	benchrun -workers 1 -short -diff BENCH_1.json   # regression gate
//
// With -diff the process exits 1 when the run is more than -tolerance
// slower (ns/pkt) than the baseline or allocates where the baseline
// did not — the CI bench-diff job's contract.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"

	"superfe/internal/apps"
	"superfe/internal/benchjson"
	"superfe/internal/core"
	"superfe/internal/feature"
	"superfe/internal/harness"
	"superfe/internal/obs"
	"superfe/internal/policy"
	"superfe/internal/trace"
)

func main() {
	workers := flag.Int("workers", 1, "shard count for the parallel engine")
	short := flag.Bool("short", false, "short mode: 1000-flow trace (the mode CI measures); default is the full 5000-flow bench_test trace")
	save := flag.Bool("save", false, "append the result as the next BENCH_<n>.json at the repo root (or -out's directory)")
	out := flag.String("out", "", "write the result to this exact path instead of auto-numbering")
	diff := flag.String("diff", "", "compare against this baseline BENCH_<n>.json ('latest' = highest-numbered of the run's own variant in the current directory); exit 1 on regression")
	obsOn := flag.Bool("obs", false, "measure the obs variant: full telemetry (metrics, interval snapshots, flow tracing, span sampling) enabled during the timed loop")
	overhead := flag.String("overhead", "", "obs-overhead gate: compare this run (which must be -obs) against a bare baseline BENCH_<n>.json ('latest' = highest-numbered bare record); exit 1 when ns/pkt exceeds baseline*(1+tolerance) or allocations appear")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional ns/pkt slowdown for -diff (allocations always have zero tolerance)")
	note := flag.String("note", "", "free-form note recorded in the JSON")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measured run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the measured run to this file")
	benchtime := flag.String("benchtime", "", "override the measurement budget, testing syntax (e.g. 2s or 100x); default 1s")
	testing.Init() // registers test.* flags so -benchtime can map onto test.benchtime
	flag.Parse()
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			fatal(err)
		}
	}

	pol := findPolicy("NPOD")
	if pol == nil {
		fatal(fmt.Errorf("bundled policy NPOD not found"))
	}
	cfg := trace.EnterpriseConfig
	mode := "full"
	cfg.Flows = 5000
	if *short {
		mode, cfg.Flows = "short", 1000
	}
	tr := trace.Generate(cfg, harness.Seed)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	res := measure(pol, tr, *workers, *obsOn)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	variant := benchjson.VariantBare
	if *obsOn {
		variant = benchjson.VariantObs
	}
	nsPerPkt := float64(res.T.Nanoseconds()) / float64(res.N)
	r := benchjson.Result{
		Schema:      benchjson.SchemaVersion,
		GitSHA:      gitSHA(),
		GoVersion:   runtime.Version(),
		CPUs:        runtime.NumCPU(),
		Workers:     *workers,
		Mode:        mode,
		Policy:      "NPOD",
		Trace:       "enterprise",
		Variant:     variant,
		NsPerPkt:    nsPerPkt,
		PktsPerSec:  float64(res.N) / res.T.Seconds(),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		Iters:       int64(res.N),
		Note:        *note,
	}
	fmt.Printf("benchrun: workers=%d mode=%s variant=%s %.1f ns/pkt %.0f pkts/s %d allocs/op %d B/op (%d iters)\n",
		r.Workers, r.Mode, r.Variant, r.NsPerPkt, r.PktsPerSec, r.AllocsPerOp, r.BytesPerOp, r.Iters)

	path := *out
	if path == "" && *save {
		var err error
		if path, err = benchjson.NextPath("."); err != nil {
			fatal(err)
		}
	}
	if path != "" {
		if err := benchjson.Save(path, r); err != nil {
			fatal(err)
		}
		fmt.Println("benchrun: wrote", path)
	}

	if *diff != "" {
		basePath := *diff
		if basePath == "latest" {
			var err error
			if basePath, err = benchjson.LatestVariant(".", r.Variant); err != nil {
				fatal(err)
			}
		}
		baseline, err := benchjson.Load(basePath)
		if err != nil {
			fatal(err)
		}
		if err := benchjson.Compare(baseline, r, *tolerance); err != nil {
			fmt.Fprintf(os.Stderr, "benchrun: FAIL vs %s: %v\n", basePath, err)
			os.Exit(1)
		}
		fmt.Printf("benchrun: OK vs %s (baseline %.1f ns/pkt, %d allocs/op)\n",
			basePath, baseline.NsPerPkt, baseline.AllocsPerOp)
	}

	if *overhead != "" {
		if !*obsOn {
			fatal(fmt.Errorf("-overhead gates an obs run against a bare baseline; add -obs"))
		}
		basePath := *overhead
		if basePath == "latest" {
			var err error
			if basePath, err = benchjson.LatestVariant(".", benchjson.VariantBare); err != nil {
				fatal(err)
			}
		}
		baseline, err := benchjson.Load(basePath)
		if err != nil {
			fatal(err)
		}
		if baseline.Variant != benchjson.VariantBare {
			fatal(fmt.Errorf("%s is a %q record; -overhead needs a bare baseline", basePath, baseline.Variant))
		}
		// The deliberate cross-variant comparison Compare refuses: the
		// instrumented pipeline against the uninstrumented one. Same
		// ns/pkt tolerance, same zero alloc tolerance.
		pct := 100 * (r.NsPerPkt - baseline.NsPerPkt) / baseline.NsPerPkt
		if r.NsPerPkt > baseline.NsPerPkt*(1+*tolerance) {
			fmt.Fprintf(os.Stderr, "benchrun: FAIL obs overhead vs %s: %.1f ns/pkt vs bare %.1f (+%.1f%%, tolerance %.0f%%)\n",
				basePath, r.NsPerPkt, baseline.NsPerPkt, pct, 100**tolerance)
			os.Exit(1)
		}
		if r.AllocsPerOp > baseline.AllocsPerOp {
			fmt.Fprintf(os.Stderr, "benchrun: FAIL obs overhead vs %s: %d allocs/op vs bare %d\n",
				basePath, r.AllocsPerOp, baseline.AllocsPerOp)
			os.Exit(1)
		}
		fmt.Printf("benchrun: OK obs overhead vs %s (%+.1f%% ns/pkt)\n", basePath, pct)
	}
}

// measure runs the same shape as BenchmarkParallelPipeline (the bare
// or obs variant): a full warmup pass admitting every group, then a
// timed steady-state Process loop over the trace.
func measure(pol *policy.Policy, tr *trace.Trace, workers int, obsOn bool) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		opts := core.DefaultParallelOptions()
		opts.Workers = workers
		if obsOn {
			opts.Obs = obs.DefaultOptions()
			opts.Obs.Enabled = true
		}
		pe, err := core.NewParallel(opts, pol, func(feature.Vector) {})
		if err != nil {
			b.Fatal(err)
		}
		defer pe.Close()
		for i := range tr.Packets {
			pe.Process(&tr.Packets[i])
		}
		pe.Drain()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pe.Process(&tr.Packets[i%len(tr.Packets)])
		}
		pe.Drain()
		b.StopTimer()
	})
}

func findPolicy(name string) *policy.Policy {
	for _, e := range apps.Catalog() {
		if strings.EqualFold(e.Name, name) {
			return e.Build()
		}
	}
	return nil
}

// gitSHA records the measured commit; "unknown" outside a checkout.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchrun:", err)
	os.Exit(1)
}
