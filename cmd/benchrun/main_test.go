package main

// benchrun smoke tests: build the real binary once, then exercise the
// measure→persist→diff loop end to end with a tiny -benchtime so the
// suite stays fast. The regression gate's math is unit-tested in
// internal/benchjson; here we pin the process-level contract (JSON on
// disk, profiles non-empty, exit 1 on a seeded regression).

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"superfe/internal/benchjson"
)

var benchrunBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "benchrun-cli")
	if err != nil {
		os.Exit(1)
	}
	benchrunBin = filepath.Join(dir, "benchrun")
	out, err := exec.Command("go", "build", "-o", benchrunBin, ".").CombinedOutput()
	if err != nil {
		os.Stderr.Write(out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func runBenchrun(t *testing.T, dir string, args ...string) (string, int) {
	t.Helper()
	var buf bytes.Buffer
	cmd := exec.Command(benchrunBin, args...)
	cmd.Dir = dir
	cmd.Stdout, cmd.Stderr = &buf, &buf
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running %v: %v", args, err)
	}
	return buf.String(), code
}

func TestMeasureWritesResultAndProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	out, code := runBenchrun(t, dir, "-workers", "1", "-short", "-benchtime", "5x",
		"-save", "-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("benchrun exited %d:\n%s", code, out)
	}
	r, err := benchjson.Load(filepath.Join(dir, "BENCH_1.json"))
	if err != nil {
		t.Fatalf("result not persisted: %v", err)
	}
	if r.Mode != "short" || r.Workers != 1 || r.NsPerPkt <= 0 || r.Iters != 5 {
		t.Errorf("implausible persisted result: %+v", r)
	}
	// The Drain at the end of the measured run has fixed costs — the
	// barrier ack channel plus the admin status/span/flight-recorder
	// cache refresh at quiescence — that amortize to zero at real
	// benchtimes but show at 5 iterations. Bound the run's total so a
	// genuine per-packet allocation (thousands per iteration) still
	// fails loudly.
	if total := r.AllocsPerOp * r.Iters; total > 64 {
		t.Errorf("hot path allocated: %d allocs over %d iters", total, r.Iters)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty (%v)", p, err)
		}
	}
}

func TestDiffGateFailsOnSeededRegression(t *testing.T) {
	dir := t.TempDir()
	// A baseline absurdly faster than any real run: the current
	// measurement must trip the ns/pkt gate and exit 1.
	impossible := benchjson.Result{
		Schema: benchjson.SchemaVersion, Workers: 1, Mode: "short",
		Policy: "NPOD", Trace: "enterprise", NsPerPkt: 0.001, PktsPerSec: 1e12,
	}
	if err := benchjson.Save(filepath.Join(dir, "BENCH_1.json"), impossible); err != nil {
		t.Fatal(err)
	}
	out, code := runBenchrun(t, dir, "-workers", "1", "-short", "-benchtime", "5x", "-diff", "latest")
	if code != 1 {
		t.Fatalf("seeded regression exited %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "ns/pkt regression") {
		t.Errorf("failure output does not name the regression:\n%s", out)
	}
}
