package main

// CLI smoke tests for tracegen: build the binary once, generate a
// fixed-seed workload into a temp file, and round-trip it through
// -info. Exit codes and stdout fragments are asserted exactly.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var tracegenBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "tracegen-cli")
	if err != nil {
		os.Exit(1)
	}
	tracegenBin = filepath.Join(dir, "tracegen")
	out, err := exec.Command("go", "build", "-o", tracegenBin, ".").CombinedOutput()
	if err != nil {
		os.Stderr.Write(out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func runCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var buf bytes.Buffer
	cmd := exec.Command(tracegenBin, args...)
	cmd.Stdout, cmd.Stderr = &buf, &buf
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running %v: %v", args, err)
	}
	return buf.String(), code
}

func TestGenerateInfoRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "osscan.sft")
	out, code := runCLI(t, "-workload", "osscan", "-seed", "5", "-o", path)
	if code != 0 {
		t.Fatalf("generate exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "wrote "+path) {
		t.Fatalf("generate did not confirm the write:\n%s", out)
	}

	info, code := runCLI(t, "-info", path)
	if code != 0 {
		t.Fatalf("-info exited %d:\n%s", code, info)
	}
	if !strings.Contains(info, path+":") {
		t.Errorf("-info output missing file summary:\n%s", info)
	}
	// Intrusion workloads carry ground-truth labels; -info must
	// surface them.
	if !strings.Contains(info, "labels:") || !strings.Contains(info, "malicious") {
		t.Errorf("-info output missing label summary:\n%s", info)
	}

	// Same seed → byte-identical trace file.
	path2 := filepath.Join(t.TempDir(), "osscan2.sft")
	if out, code := runCLI(t, "-workload", "osscan", "-seed", "5", "-o", path2); code != 0 {
		t.Fatalf("second generate exited %d:\n%s", code, out)
	}
	b1, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("identical seeds produced different trace files")
	}
}

func TestNoArgsExitsTwo(t *testing.T) {
	if _, code := runCLI(t); code != 2 {
		t.Fatalf("no arguments exited %d, want 2", code)
	}
}

func TestUnknownWorkloadFails(t *testing.T) {
	out, code := runCLI(t, "-workload", "nosuch", "-o", filepath.Join(t.TempDir(), "x.sft"))
	if code != 1 {
		t.Fatalf("unknown workload exited %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "unknown workload") {
		t.Errorf("error message does not name the failure:\n%s", out)
	}
}

func TestWorkloadRequiresOutput(t *testing.T) {
	out, code := runCLI(t, "-workload", "osscan")
	if code != 1 {
		t.Fatalf("-workload without -o exited %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "-o required") {
		t.Errorf("error message does not mention -o:\n%s", out)
	}
}
