// Command tracegen synthesises the evaluation workloads (Table 2
// backgrounds and the four application scenarios) and writes them as
// SFT1 trace files, or summarises an existing file — the stand-in for
// the paper's MoonGen replay setup.
//
// Usage:
//
//	tracegen -workload enterprise -o enterprise.sft
//	tracegen -workload mirai -amplify 4 -o mirai4x.sft
//	tracegen -info enterprise.sft
package main

import (
	"flag"
	"fmt"
	"os"

	"superfe/internal/trace"
)

func main() {
	workload := flag.String("workload", "", "mawi | enterprise | campus | wfp | botnet | covert | mirai | osscan | ssdp")
	out := flag.String("o", "", "output trace file")
	info := flag.String("info", "", "summarise an existing trace file")
	seed := flag.Int64("seed", 42, "generator seed")
	amplify := flag.Int("amplify", 1, "replicate the trace into N disjoint flow spaces (in-switch amplification)")
	flag.Parse()

	switch {
	case *info != "":
		f, err := os.Open(*info)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := trace.Read(f, *info)
		if err != nil {
			fatal(err)
		}
		st := tr.Stats()
		fmt.Printf("%s: %s\n", *info, st)
		if len(tr.Labels) > 0 {
			var mal int
			for _, l := range tr.Labels {
				if l == 1 {
					mal++
				}
			}
			fmt.Printf("labels: %d malicious / %d total\n", mal, len(tr.Labels))
		}
	case *workload != "":
		if *out == "" {
			fatal(fmt.Errorf("-o required with -workload"))
		}
		tr, err := makeWorkload(*workload, *seed)
		if err != nil {
			fatal(err)
		}
		if *amplify > 1 {
			tr = trace.Amplify(tr, *amplify)
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := trace.Write(f, tr); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %s\n", *out, tr.Stats())
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func makeWorkload(name string, seed int64) (*trace.Trace, error) {
	switch name {
	case "mawi":
		return trace.Generate(trace.MAWIConfig, seed), nil
	case "enterprise":
		return trace.Generate(trace.EnterpriseConfig, seed), nil
	case "campus":
		return trace.Generate(trace.CampusConfig, seed), nil
	case "wfp":
		return trace.GenerateWebsites(trace.DefaultWebsiteConfig(), seed), nil
	case "botnet":
		return trace.GenerateBotnet(trace.DefaultBotnetConfig(), seed), nil
	case "covert":
		return trace.GenerateCovert(trace.DefaultCovertConfig(), seed), nil
	case "mirai":
		return trace.GenerateIntrusion(trace.DefaultIntrusionConfig(trace.AttackMirai), seed), nil
	case "osscan":
		return trace.GenerateIntrusion(trace.DefaultIntrusionConfig(trace.AttackOSScan), seed), nil
	case "ssdp":
		return trace.GenerateIntrusion(trace.DefaultIntrusionConfig(trace.AttackSSDPFlood), seed), nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
