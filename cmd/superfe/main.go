// Command superfe deploys one of the bundled application policies on
// the simulated switch+SmartNIC pipeline, replays a synthetic
// workload through it, and writes the extracted feature vectors as
// CSV — the command-line face of the library.
//
// Usage:
//
//	superfe -list                         # list bundled policies
//	superfe -policy Kitsune -show         # print policy source + programs
//	superfe -policy NPOD -trace campus    # run and emit vectors as CSV
//	superfe -policy TF -trace wfp -stats  # pipeline statistics only
//	superfe -policy Kitsune -trace enterprise -stats \
//	    -workers 4 -verify-wire -metrics-addr :9090   # serve telemetry
//
// With -metrics-addr the server is the full admin/debug surface:
// /metrics, /status, /snapshot, /spans, /flightrecorder and
// /debug/pprof/. -flightrec-dir collects anomaly-triggered
// flight-recorder dumps; -profile-dir rotates CPU+heap profiles on a
// wall-clock cadence.
//
// Two subcommands run the resident service mode instead of a one-shot
// replay:
//
//	superfe serve -listen unix:/tmp/sfe.sock -admin 127.0.0.1:9090 \
//	    -tenants edge=NPOD,lab=Kitsune     # multi-tenant server
//	superfe ingest -connect unix:/tmp/sfe.sock -tenant edge \
//	    -trace enterprise                  # stream a workload into it
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"superfe/internal/apps"
	"superfe/internal/core"
	"superfe/internal/faults"
	"superfe/internal/feature"
	"superfe/internal/nicsim"
	"superfe/internal/obs"
	"superfe/internal/policy"
	"superfe/internal/switchsim"
	"superfe/internal/trace"
)

func main() {
	// Subcommands take over before the flat flag CLI: `superfe serve`
	// is the resident multi-tenant service, `superfe ingest` its trace
	// feeder (see serve.go).
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			os.Exit(runServe(os.Args[2:]))
		case "ingest":
			os.Exit(runIngest(os.Args[2:]))
		}
	}
	list := flag.Bool("list", false, "list bundled policies")
	polName := flag.String("policy", "", "bundled policy name (see -list)")
	show := flag.Bool("show", false, "print the policy source and generated programs")
	traceName := flag.String("trace", "enterprise", "workload: mawi, enterprise, campus, wfp, botnet, covert, mirai, osscan, ssdp")
	seed := flag.Int64("seed", 42, "trace generator seed")
	statsOnly := flag.Bool("stats", false, "print pipeline statistics instead of vectors")
	maxVecs := flag.Int("n", 0, "emit at most n vectors (0 = all)")
	workers := flag.Int("workers", 1, "shard the pipeline across n switch+NIC pairs (>1 uses the parallel engine)")
	verifyWire := flag.Bool("verify-wire", false, "round-trip every switch→NIC message through the binary wire codec; exit non-zero on any mismatch")
	faultSpec := flag.String("faults", "", "seeded fault-injection plan, e.g. seed=7,rate=0.01,kinds=drop+corrupt,scope=0:3fffffff (kinds also accept wire/switch/nic/all; see internal/faults)")
	obsOn := flag.Bool("obs", false, "enable the telemetry subsystem (implied by -metrics-addr and -metrics-out)")
	metricsAddr := flag.String("metrics-addr", "", "serve telemetry over HTTP on this address (e.g. :9090); the process stays alive after the replay for scraping")
	metricsOut := flag.String("metrics-out", "", "write the final metrics as a Prometheus text dump to this file (- = stdout)")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile of the replay to this file (inspect with go tool pprof)")
	memProf := flag.String("memprofile", "", "write a heap profile taken after the replay to this file")
	flightrecDir := flag.String("flightrec-dir", "", "write anomaly-triggered flight-recorder dumps (JSON) into this directory, retention-bounded")
	flightrecOut := flag.String("flightrec-out", "", "write a final on-demand flight-recorder dump to this file after the replay (- = stdout)")
	profileDir := flag.String("profile-dir", "", "capture rotating CPU+heap profiles into this directory, retention-bounded (see -profile-interval, -profile-retain)")
	profileEvery := flag.Duration("profile-interval", 30*time.Second, "cadence of the rotating profile capture for -profile-dir")
	profileRetain := flag.Int("profile-retain", 4, "profiles of each kind retained in -profile-dir")
	flag.Parse()

	if *list {
		for _, e := range apps.Catalog() {
			p := e.Build()
			fmt.Printf("%-10s %-26s dim=%d loc=%d\n", e.Name, e.Objective, p.FeatureDim(), p.LinesOfCode())
		}
		return
	}
	if *polName == "" {
		fmt.Fprintln(os.Stderr, "superfe: -policy required (try -list)")
		os.Exit(2)
	}
	var pol *policy.Policy
	for _, e := range apps.Catalog() {
		if strings.EqualFold(e.Name, *polName) {
			pol = e.Build()
		}
	}
	if pol == nil {
		fmt.Fprintf(os.Stderr, "superfe: unknown policy %q\n", *polName)
		os.Exit(2)
	}

	if *show {
		plan, err := policy.Compile(pol)
		if err != nil {
			fmt.Fprintln(os.Stderr, "superfe:", err)
			os.Exit(1)
		}
		fmt.Println(pol.Source())
		fmt.Println(plan.P4Listing())
		fmt.Println(plan.MicroCListing())
		return
	}

	tr, err := makeTrace(*traceName, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "superfe:", err)
		os.Exit(2)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "superfe:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "superfe:", err)
			os.Exit(1)
		}
	}

	emitted := 0
	sink := func(v feature.Vector) {
		if *statsOnly || (*maxVecs > 0 && emitted >= *maxVecs) {
			emitted++
			return
		}
		emitted++
		cells := make([]string, 0, len(v.Values)+1)
		cells = append(cells, v.Key.String())
		for _, x := range v.Values {
			cells = append(cells, strconv.FormatFloat(x, 'g', 8, 64))
		}
		fmt.Println(strings.Join(cells, ","))
	}
	opts := core.DefaultOptions()
	opts.VerifyWire = *verifyWire
	if *faultSpec != "" {
		fp, err := faults.Parse(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "superfe:", err)
			os.Exit(2)
		}
		opts.Faults = fp
	}
	if *metricsAddr != "" || *metricsOut != "" {
		*obsOn = true
	}
	if *obsOn {
		opts.Obs = obs.DefaultOptions()
		opts.Obs.Enabled = true
	}
	opts.FlightRec.Dir = *flightrecDir

	// The rotating profiler is driven from a wall-clock ticker here in
	// the command — package obs is deterministic by contract and owns
	// no clock. One explicit Tick starts the first CPU window covering
	// the replay; in serving mode a goroutine keeps the cadence, in
	// one-shot mode main closes the window itself after the replay.
	var prof *obs.Profiler
	if *profileDir != "" {
		var err error
		if prof, err = obs.NewProfiler(*profileDir, *profileRetain); err != nil {
			fmt.Fprintln(os.Stderr, "superfe: profiler:", err)
			os.Exit(1)
		}
		if err := prof.Tick(); err != nil {
			fmt.Fprintln(os.Stderr, "superfe: profiler:", err)
			os.Exit(1)
		}
		if *metricsAddr != "" {
			//superfe:goroutine-ok process-lifetime ticker: serving mode blocks on select{} until Ctrl-C, so the profiler's only shutdown edge is process exit
			go func() {
				for range time.Tick(*profileEvery) {
					if err := prof.Tick(); err != nil {
						fmt.Fprintln(os.Stderr, "superfe: profiler:", err)
					}
				}
			}()
		}
	}

	var sw pipeStats
	var src obs.Source
	if *workers > 1 {
		popts := core.DefaultParallelOptions()
		popts.Options = opts
		popts.Workers = *workers
		// Deterministic merge keeps the CSV stable run-to-run.
		popts.DeterministicMerge = true
		pe, err := core.NewParallel(popts, pol, sink)
		if err != nil {
			fmt.Fprintln(os.Stderr, "superfe:", err)
			os.Exit(1)
		}
		src = pe.ObsSource()
		serveMetrics(*metricsAddr, src)
		for i := range tr.Packets {
			pe.Process(&tr.Packets[i])
		}
		if err := pe.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "superfe:", err)
			os.Exit(1)
		}
		sw.sw, sw.nic = pe.SwitchStats(), pe.NICStats()
		sw.faults = pe.FaultStats()
		if err := pe.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "superfe:", err)
			os.Exit(1)
		}
	} else {
		fe, err := core.New(opts, pol, sink)
		if err != nil {
			fmt.Fprintln(os.Stderr, "superfe:", err)
			os.Exit(1)
		}
		src = fe.ObsSource()
		serveMetrics(*metricsAddr, src)
		for i := range tr.Packets {
			fe.Process(&tr.Packets[i])
		}
		fe.Flush()
		if err := fe.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "superfe:", err)
			os.Exit(1)
		}
		sw.sw, sw.nic = fe.SwitchStats(), fe.NICStats()
		sw.faults = fe.FaultStats()
		sw.degraded = fe.Degraded()
	}

	// Profiles cover exactly the replay (not trace generation, not the
	// post-run metrics serving).
	if *cpuProf != "" {
		pprof.StopCPUProfile()
	}
	if *memProf != "" {
		if err := writeHeapProfile(*memProf); err != nil {
			fmt.Fprintln(os.Stderr, "superfe:", err)
			os.Exit(1)
		}
	}

	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, src); err != nil {
			fmt.Fprintln(os.Stderr, "superfe: metrics dump:", err)
			os.Exit(1)
		}
	}
	if *flightrecOut != "" {
		if err := writeFlightRec(*flightrecOut, src); err != nil {
			fmt.Fprintln(os.Stderr, "superfe: flight-recorder dump:", err)
			os.Exit(1)
		}
	}
	// One-shot mode: close out the CPU window that covered the replay.
	// (Serving mode keeps rotating on the ticker instead.)
	if prof != nil && *metricsAddr == "" {
		if err := prof.Tick(); err != nil {
			fmt.Fprintln(os.Stderr, "superfe: profiler:", err)
		}
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "superfe: profiler:", err)
		}
	}

	if *statsOnly {
		fmt.Printf("trace      : %s (%s)\n", tr.Name, tr.Stats())
		if *workers > 1 {
			fmt.Printf("workers    : %d (per-shard stats merged)\n", *workers)
		}
		fmt.Printf("switch     : %s\n", sw.sw)
		fmt.Printf("nic        : msgs=%d mgpvs=%d cells=%d vectors=%d groups=%d\n",
			sw.nic.Msgs, sw.nic.MGPVs, sw.nic.Cells, sw.nic.Vectors, sw.nic.GroupsLive)
		fmt.Printf("aggregation: %.4f (%.2f%% reduction)\n", sw.sw.AggregationRatio(), 100*(1-sw.sw.AggregationRatio()))
		fmt.Printf("vectors    : %d of dim %d\n", emitted, pol.FeatureDim())
		if opts.Faults != nil {
			fmt.Printf("faults     : %v degraded-now=%v\n", sw.faults, sw.degraded)
		}
	}

	if *metricsAddr != "" {
		fmt.Fprintf(os.Stderr, "superfe: replay done; serving telemetry on http://%s/metrics (also /status /snapshot /spans /flightrecorder /debug/pprof/) — Ctrl-C to exit\n", *metricsAddr)
		select {}
	}
}

// serveMetrics starts the telemetry HTTP server (no-op for an empty
// address). Live scrapes during the replay are lock-free and
// race-safe; the series and timeline endpoints are exact once the
// replay has flushed.
func serveMetrics(addr string, src obs.Source) {
	if addr == "" {
		return
	}
	// The live server is the debug surface: mount /debug/pprof/ next to
	// the telemetry and admin endpoints.
	src.Pprof = true
	//superfe:goroutine-ok process-lifetime listener: the CLI blocks on select{} until Ctrl-C, so the server's only shutdown edge is process exit
	go func() {
		if err := http.ListenAndServe(addr, obs.NewHTTPHandler(src)); err != nil {
			fmt.Fprintln(os.Stderr, "superfe: metrics server:", err)
			os.Exit(1)
		}
	}()
}

// writeHeapProfile forces a GC (so the profile reflects live state,
// not garbage awaiting collection) and writes the heap profile.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// writeMetrics dumps the final merged snapshot in Prometheus text
// format to path ("-" = stdout).
func writeMetrics(path string, src obs.Source) error {
	snap := src.Scrape()
	if snap == nil {
		return fmt.Errorf("telemetry disabled")
	}
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return obs.WritePrometheus(w, snap)
}

// writeFlightRec dumps a final on-demand flight-recorder capture as
// JSON to path ("-" = stdout).
func writeFlightRec(path string, src obs.Source) error {
	if src.FlightRec == nil {
		return fmt.Errorf("flight recorder disabled")
	}
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return obs.WriteFlightRecJSON(w, src.FlightRec())
}

// pipeStats bundles the merged pipeline counters from either
// engine for the -stats report.
type pipeStats struct {
	sw       switchsim.Stats
	nic      nicsim.RuntimeStats
	faults   faults.Stats
	degraded bool
}

func makeTrace(name string, seed int64) (*trace.Trace, error) {
	switch strings.ToLower(name) {
	case "mawi":
		return trace.Generate(trace.MAWIConfig, seed), nil
	case "enterprise":
		return trace.Generate(trace.EnterpriseConfig, seed), nil
	case "campus":
		return trace.Generate(trace.CampusConfig, seed), nil
	case "wfp":
		return trace.GenerateWebsites(trace.DefaultWebsiteConfig(), seed), nil
	case "botnet":
		return trace.GenerateBotnet(trace.DefaultBotnetConfig(), seed), nil
	case "covert":
		return trace.GenerateCovert(trace.DefaultCovertConfig(), seed), nil
	case "mirai":
		return trace.GenerateIntrusion(trace.DefaultIntrusionConfig(trace.AttackMirai), seed), nil
	case "osscan":
		return trace.GenerateIntrusion(trace.DefaultIntrusionConfig(trace.AttackOSScan), seed), nil
	case "ssdp":
		return trace.GenerateIntrusion(trace.DefaultIntrusionConfig(trace.AttackSSDPFlood), seed), nil
	}
	return nil, fmt.Errorf("unknown trace %q", name)
}
