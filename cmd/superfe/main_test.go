package main

// CLI smoke tests: build the real binary once in TestMain, then drive
// it as a subprocess and assert on exit codes and golden stdout
// fragments. Everything runs with fixed seeds, so the assertions are
// exact and the faulted replay can be checked for byte-identical
// reproducibility — the CLI-level form of the determinism contract
// the fault injector guarantees internally.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var superfeBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "superfe-cli")
	if err != nil {
		os.Exit(1)
	}
	superfeBin = filepath.Join(dir, "superfe")
	out, err := exec.Command("go", "build", "-o", superfeBin, ".").CombinedOutput()
	if err != nil {
		os.Stderr.Write(out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// runCLI executes the built binary and returns combined output plus
// the process exit code.
func runCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var buf bytes.Buffer
	cmd := exec.Command(superfeBin, args...)
	cmd.Stdout, cmd.Stderr = &buf, &buf
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running %v: %v", args, err)
	}
	return buf.String(), code
}

func TestListShowsBundledPolicies(t *testing.T) {
	out, code := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d:\n%s", code, out)
	}
	for _, name := range []string{"Kitsune", "NPOD"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing policy %q:\n%s", name, out)
		}
	}
}

func TestStatsReplayGoldenFragments(t *testing.T) {
	out, code := runCLI(t, "-policy", "Kitsune", "-trace", "osscan", "-seed", "7", "-stats")
	if code != 0 {
		t.Fatalf("stats replay exited %d:\n%s", code, out)
	}
	for _, frag := range []string{"trace      :", "switch     :", "aggregation:", "vectors    :"} {
		if !strings.Contains(out, frag) {
			t.Errorf("stats output missing %q:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "faults     :") {
		t.Errorf("faults line printed without a -faults plan:\n%s", out)
	}
}

func TestFaultedReplayIsReproducible(t *testing.T) {
	args := []string{"-policy", "Kitsune", "-trace", "osscan", "-seed", "7",
		"-stats", "-faults", "seed=11,rate=0.05,kinds=all"}
	out1, code1 := runCLI(t, args...)
	if code1 != 0 {
		t.Fatalf("faulted replay exited %d:\n%s", code1, out1)
	}
	if !strings.Contains(out1, "faults     : injected[") {
		t.Fatalf("faulted replay missing fault stats line:\n%s", out1)
	}
	out2, code2 := runCLI(t, args...)
	if code2 != 0 {
		t.Fatalf("second faulted replay exited %d:\n%s", code2, out2)
	}
	if out1 != out2 {
		t.Fatalf("identical seeds produced different output:\n--- first\n%s--- second\n%s", out1, out2)
	}
}

func TestBadFaultSpecExitsTwo(t *testing.T) {
	out, code := runCLI(t, "-policy", "Kitsune", "-faults", "kinds=gremlins")
	if code != 2 {
		t.Fatalf("bad fault spec exited %d, want 2:\n%s", code, out)
	}
	if !strings.Contains(out, "unknown fault kind") {
		t.Errorf("error message does not name the bad kind:\n%s", out)
	}
}

func TestMissingPolicyExitsTwo(t *testing.T) {
	out, code := runCLI(t)
	if code != 2 {
		t.Fatalf("no -policy exited %d, want 2:\n%s", code, out)
	}
	if !strings.Contains(out, "-policy required") {
		t.Errorf("missing usage hint:\n%s", out)
	}
}

func TestProfileFlagsWriteProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	out, code := runCLI(t, "-policy", "NPOD", "-trace", "campus", "-seed", "3", "-stats",
		"-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("profiled replay exited %d:\n%s", code, out)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}
