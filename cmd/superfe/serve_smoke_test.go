package main

// Service-mode smoke test: boot the real binary as `superfe serve`
// with two tenants on a unix socket, feed one of them with the
// `superfe ingest` subcommand and the other through the serve client
// library, scrape the admin surface for golden fragments, then send
// SIGTERM and assert a graceful drain with exit code 0.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"superfe/internal/serve"
	"superfe/internal/trace"
)

// startServeProc launches `superfe serve`, waits for the startup
// announce lines on stderr, and returns the ingest socket path, the
// admin base URL, and a function that collects the rest of stderr
// after the process exits.
func startServeProc(t *testing.T, tenants string) (cmd *exec.Cmd, sock, adminURL string, rest func() string) {
	t.Helper()
	dir, err := os.MkdirTemp("", "sfe")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	sock = filepath.Join(dir, "ingest.sock")

	cmd = exec.Command(superfeBin, "serve",
		"-listen", "unix:"+sock, "-admin", "127.0.0.1:0",
		"-tenants", tenants, "-workers", "2")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	// The announce lines are the first thing serve prints; read until
	// both listeners are up, then hand the pipe to a background drain.
	sc := bufio.NewScanner(stderr)
	var startup []string
	seenIngest := false
	for !seenIngest || adminURL == "" {
		if !sc.Scan() {
			t.Fatalf("serve exited during startup; stderr so far:\n%s", strings.Join(startup, "\n"))
		}
		line := sc.Text()
		startup = append(startup, line)
		if strings.Contains(line, "ingest listening") {
			seenIngest = true
		}
		if _, after, ok := strings.Cut(line, "admin listening on "); ok {
			adminURL = strings.TrimSpace(after)
		}
	}
	var mu sync.Mutex
	var tail bytes.Buffer
	done := make(chan struct{})
	go func() {
		defer close(done)
		for sc.Scan() {
			mu.Lock()
			fmt.Fprintln(&tail, sc.Text())
			mu.Unlock()
		}
	}()
	rest = func() string {
		<-done
		mu.Lock()
		defer mu.Unlock()
		return strings.Join(startup, "\n") + "\n" + tail.String()
	}
	return cmd, sock, adminURL, rest
}

// adminGet scrapes one admin path and returns the body.
func adminGet(t *testing.T, adminURL, path string) string {
	t.Helper()
	resp, err := http.Get(adminURL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d:\n%s", path, resp.StatusCode, body)
	}
	return string(body)
}

func TestServeSmoke(t *testing.T) {
	cmd, sock, adminURL, rest := startServeProc(t, "edge=NPOD,lab=Kitsune")

	// Feed tenant edge through the ingest subcommand (the CLI path)…
	out, code := runCLI(t, "ingest", "-connect", "unix:"+sock, "-tenant", "edge",
		"-trace", "enterprise", "-seed", "5", "-batch", "100")
	if code != 0 {
		t.Fatalf("ingest exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "sent") || !strings.Contains(out, "tenant edge") {
		t.Errorf("ingest missing summary line:\n%s", out)
	}

	// …and tenant lab through the client library (the embedded path).
	tr := trace.Generate(trace.CampusConfig, 9)
	c, err := serve.Dial("unix", sock, "lab")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendPackets(tr.Packets); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Golden fragments from the admin surface: both tenants listed
	// with their policies and live packet counts, a healthy per-tenant
	// status, and the service rollup.
	tenantsBody := adminGet(t, adminURL, "/tenants")
	for _, frag := range []string{`"name": "edge"`, `"policy": "NPOD"`, `"name": "lab"`, `"policy": "Kitsune"`} {
		if !strings.Contains(tenantsBody, frag) {
			t.Errorf("/tenants missing %q:\n%s", frag, tenantsBody)
		}
	}
	edgeBody := adminGet(t, adminURL, "/tenants/edge")
	for _, frag := range []string{`"tenant": "edge"`, `"health": "healthy"`} {
		if !strings.Contains(edgeBody, frag) {
			t.Errorf("/tenants/edge missing %q:\n%s", frag, edgeBody)
		}
	}
	statusBody := adminGet(t, adminURL, "/status")
	for _, frag := range []string{`"tenants": 2`, `"tenant": "edge"`, `"tenant": "lab"`} {
		if !strings.Contains(statusBody, frag) {
			t.Errorf("/status missing %q:\n%s", frag, statusBody)
		}
	}

	// Graceful drain: SIGTERM must flush both tenants and exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("serve exited non-zero after SIGTERM: %v\n%s", err, rest())
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("serve did not exit within 30s of SIGTERM:\n%s", rest())
	}
	stderrAll := rest()
	if !strings.Contains(stderrAll, "drained 2 tenants; exiting") {
		t.Errorf("missing drain message in stderr:\n%s", stderrAll)
	}
}

func TestServeRejectsInfeasibleTenant(t *testing.T) {
	// An unknown policy must fail fast at startup, before any listener
	// binds, with the resolver's error on stderr.
	out, code := runCLI(t, "serve", "-listen", "tcp:127.0.0.1:0", "-tenants", "edge=NoSuchPolicy")
	if code != 1 {
		t.Fatalf("unknown policy exited %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "NoSuchPolicy") {
		t.Errorf("error does not name the policy:\n%s", out)
	}
	if strings.Contains(out, "listening") {
		t.Errorf("listener bound despite startup failure:\n%s", out)
	}
}

func TestServeBadTenantSpecExitsTwo(t *testing.T) {
	out, code := runCLI(t, "serve", "-tenants", "justaname")
	if code != 2 {
		t.Fatalf("bad tenant spec exited %d, want 2:\n%s", code, out)
	}
	if !strings.Contains(out, "want \"name=Policy") {
		t.Errorf("missing spec usage hint:\n%s", out)
	}
}
