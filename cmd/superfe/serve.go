package main

// The `superfe serve` and `superfe ingest` subcommands: the resident
// multi-tenant service mode (internal/serve) and its companion trace
// feeder. serve binds the streaming ingest listener and the admin
// HTTP surface, announces both on stderr, and drains gracefully on
// SIGTERM/SIGINT; ingest replays a bundled synthetic workload into a
// running server over the ingest protocol — the live-traffic stand-in
// for a mirror port.

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"superfe/internal/serve"
)

// splitListen parses "unix:/path" or "tcp:host:port".
func splitListen(spec string) (network, addr string, err error) {
	network, addr, ok := strings.Cut(spec, ":")
	if !ok || (network != "unix" && network != "tcp") || addr == "" {
		return "", "", fmt.Errorf(`listen address %q: want "unix:/path" or "tcp:host:port"`, spec)
	}
	return network, addr, nil
}

// parseTenantSpec parses one "name=Policy[:workers]" element.
func parseTenantSpec(spec string) (name, pol string, workers int, err error) {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok || name == "" || rest == "" {
		return "", "", 0, fmt.Errorf(`tenant spec %q: want "name=Policy[:workers]"`, spec)
	}
	pol = rest
	if p, w, ok := strings.Cut(rest, ":"); ok {
		n, err := strconv.Atoi(w)
		if err != nil || n <= 0 {
			return "", "", 0, fmt.Errorf("tenant spec %q: bad worker count %q", spec, w)
		}
		pol, workers = p, n
	}
	return name, pol, workers, nil
}

// runServe is the `superfe serve` entry point.
func runServe(args []string) int {
	fs := flag.NewFlagSet("superfe serve", flag.ExitOnError)
	listen := fs.String("listen", "tcp:127.0.0.1:0", `ingest listener, "unix:/path" or "tcp:host:port"`)
	adminAddr := fs.String("admin", "", "admin/telemetry HTTP address (e.g. 127.0.0.1:0); empty disables the surface")
	tenantsSpec := fs.String("tenants", "", `initial tenant set, comma-separated "name=Policy[:workers]" (policies from -list)`)
	workers := fs.Int("workers", 2, "default shards per tenant engine")
	fs.Parse(args)

	if *tenantsSpec == "" {
		fmt.Fprintln(os.Stderr, "superfe: serve: -tenants required (e.g. -tenants edge=NPOD,lab=Kitsune)")
		return 2
	}
	srv := serve.New(serve.Config{Workers: *workers})
	for _, spec := range strings.Split(*tenantsSpec, ",") {
		name, pol, w, err := parseTenantSpec(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "superfe: serve:", err)
			return 2
		}
		_, report, err := srv.StartTenant(name, pol, w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "superfe: serve: tenant %s: %v\n%s", name, err, report)
			return 1
		}
		fmt.Fprintf(os.Stderr, "superfe: serve: tenant %s serving %s\n", name, pol)
	}

	network, addr, err := splitListen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "superfe: serve:", err)
		return 2
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "superfe: serve:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "superfe: serve: ingest listening on %s %s\n", network, ln.Addr())

	if *adminAddr != "" {
		aln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "superfe: serve:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "superfe: serve: admin listening on http://%s\n", aln.Addr())
		//superfe:goroutine-ok admin HTTP server: serves until Shutdown's process exit; the listener dies with the process
		go func() {
			if err := http.Serve(aln, srv.AdminHandler()); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintln(os.Stderr, "superfe: serve: admin:", err)
			}
		}()
	}

	//superfe:goroutine-ok ingest accept loop: exits with ErrServerClosed when Shutdown closes the listener below
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, serve.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "superfe: serve: listener:", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	n := len(srv.Tenants())
	if err := srv.Shutdown(); err != nil {
		fmt.Fprintln(os.Stderr, "superfe: serve: shutdown:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "superfe: serve: drained %d tenants; exiting\n", n)
	return 0
}

// runIngest is the `superfe ingest` entry point: generate a bundled
// workload and stream it into a running server.
func runIngest(args []string) int {
	fs := flag.NewFlagSet("superfe ingest", flag.ExitOnError)
	connect := fs.String("connect", "", `server ingest address, "unix:/path" or "tcp:host:port"`)
	tenant := fs.String("tenant", "", "tenant to feed")
	traceName := fs.String("trace", "enterprise", "workload: mawi, enterprise, campus, wfp, botnet, covert, mirai, osscan, ssdp")
	seed := fs.Int64("seed", 42, "trace generator seed")
	batch := fs.Int("batch", 256, "packets per ingest frame")
	flush := fs.Bool("flush", true, "send a flush barrier after the trace and wait for it")
	fs.Parse(args)

	if *connect == "" || *tenant == "" {
		fmt.Fprintln(os.Stderr, "superfe: ingest: -connect and -tenant required")
		return 2
	}
	network, addr, err := splitListen(*connect)
	if err != nil {
		fmt.Fprintln(os.Stderr, "superfe: ingest:", err)
		return 2
	}
	tr, err := makeTrace(*traceName, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "superfe: ingest:", err)
		return 2
	}
	c, err := serve.Dial(network, addr, *tenant)
	if err != nil {
		fmt.Fprintln(os.Stderr, "superfe: ingest:", err)
		return 1
	}
	defer c.Close()
	for off := 0; off < len(tr.Packets); off += *batch {
		end := off + *batch
		if end > len(tr.Packets) {
			end = len(tr.Packets)
		}
		if err := c.SendPackets(tr.Packets[off:end]); err != nil {
			fmt.Fprintln(os.Stderr, "superfe: ingest:", err)
			return 1
		}
	}
	if *flush {
		if err := c.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "superfe: ingest:", err)
			return 1
		}
	}
	fmt.Fprintf(os.Stderr, "superfe: ingest: sent %d packets (%s) to tenant %s\n", len(tr.Packets), tr.Name, *tenant)
	return 0
}
