package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke drives a tiny campaign through the real harness: it
// must exit 0, report both verdict buckets in the summary, and write
// nothing to the corpus.
func TestRunSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-seed", "1", "-n", "12", "-flows", "30", "-corpus", ""}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	sum := stdout.String()
	if !strings.Contains(sum, "12 case(s)") || !strings.Contains(sum, "0 failure(s)") {
		t.Fatalf("unexpected summary: %q", sum)
	}
}

// TestRunBadFlags pins the flag-error exit code.
func TestRunBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}
