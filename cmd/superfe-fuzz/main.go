// Command superfe-fuzz is the policy-space differential compiler
// fuzzer: it generates structurally valid random policies paired
// with randomized hardware envelopes, classifies each plan with
// planvet, and runs every feasible plan through the sequential
// engine, the parallel (SPSC-ring) engine and the software baseline
// on the same seeded trace, requiring byte-identical feature
// vectors. A planvet-accepted plan that trips the switch simulator's
// resource-overflow clamp also fails the run — the static model and
// the simulator must agree about the envelope.
//
// Cases whose run hits FG-table collisions (FGOverwrites > 0) are
// counted as approximate and excluded from the byte-identical
// comparison: collision misattribution is a documented lossy
// approximation, and the sequential engine's single FG table collides
// on different keys than the parallel engine's per-shard tables.
//
// Every case also runs the planprove soundness cross-check: a plan
// proved saturation-free must not trip any simulator saturation
// clamp, and every confirmed value-range witness must replay to an
// actual clamp trip on a fresh engine. A third of the
// single-granularity cases additionally re-run under a scoped fault
// campaign, asserting out-of-scope bit-equivalence and (for
// non-corrupting kinds) clamp soundness under faults.
//
// The case count honours the SUPERFE_FUZZ_N environment variable
// when -n is not given, so nightly CI can widen the campaign without
// touching the per-PR budget.
//
// CI runs a fixed-seed campaign on every PR:
//
//	go run ./cmd/superfe-fuzz -seed 1 -n 200
//
// On failure the offending spec is shrunk to a minimal reproducer
// and written to -corpus (default internal/polgen/testdata/corpus),
// where TestCorpusReplay picks it up on every plain `go test` — so
// a divergence found once stays fixed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"superfe/internal/polgen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("superfe-fuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "campaign seed; case i is Generate(seed, i)")
	n := fs.Int("n", defaultCases(), "number of cases (default honours $SUPERFE_FUZZ_N)")
	flows := fs.Int("flows", 0, "trace flow count per case (0 = default)")
	corpus := fs.String("corpus", filepath.Join("internal", "polgen", "testdata", "corpus"),
		"directory shrunk reproducers are written to (empty disables)")
	verbose := fs.Bool("v", false, "log every case, not just failures")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	opts := polgen.RunOptions{Flows: *flows}
	feasible, infeasible, approx, failures := 0, 0, 0, 0
	witnesses, faulted := 0, 0
	for i := 0; i < *n; i++ {
		spec := polgen.Generate(*seed, i)
		out := polgen.Run(spec, opts)
		switch {
		case out.Feasible:
			feasible++
		case out.BuildErr == "":
			infeasible++
		}
		if out.Approx {
			approx++
		}
		witnesses += out.Witnesses
		if out.Faulted {
			faulted++
		}
		if *verbose {
			fmt.Fprintf(stdout, "case %d (%s): feasible=%v approx=%v vectors=%d witnesses=%d faulted=%v\n",
				i, spec.Name, out.Feasible, out.Approx, out.Vectors, out.Witnesses, out.Faulted)
		}
		if !out.Failed() {
			continue
		}
		failures++
		fmt.Fprintf(stderr, "superfe-fuzz: case %d (%s) FAILED: %s\n", i, spec.Name, failureReason(out))
		min := polgen.Shrink(spec, func(s polgen.Spec) bool {
			return polgen.Run(s, opts).Failed()
		})
		min.Name = fmt.Sprintf("shrunk-%d-%d", *seed, i)
		b, err := json.MarshalIndent(min, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "superfe-fuzz: marshal reproducer:", err)
			continue
		}
		b = append(b, '\n')
		if *corpus != "" {
			path := filepath.Join(*corpus, min.Name+".json")
			if err := os.WriteFile(path, b, 0o644); err != nil {
				fmt.Fprintln(stderr, "superfe-fuzz: write reproducer:", err)
			} else {
				fmt.Fprintf(stderr, "superfe-fuzz: minimal reproducer written to %s — commit it so TestCorpusReplay guards the fix\n", path)
			}
		}
		fmt.Fprintf(stderr, "superfe-fuzz: minimal reproducer:\n%s", b)
	}

	fmt.Fprintf(stdout, "superfe-fuzz: %d case(s): %d feasible (ran differential), %d infeasible (classified), %d approximate (FG collisions, comparison skipped), %d witness replay(s), %d faulted run(s), %d failure(s)\n",
		*n, feasible, infeasible, approx, witnesses, faulted, failures)
	if failures > 0 {
		return 1
	}
	return 0
}

// defaultCases is the -n default: 200 for the per-PR budget, or
// whatever SUPERFE_FUZZ_N says (nightly CI raises it).
func defaultCases() int {
	if s := os.Getenv("SUPERFE_FUZZ_N"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 200
}

func failureReason(out *polgen.Outcome) string {
	switch {
	case out.BuildErr != "":
		return "generated spec does not build: " + out.BuildErr
	case out.Overflow:
		return "planvet accepted the plan but the switch resource estimate overflowed its clamp"
	case out.WitnessFailed != "":
		return "witness soundness: " + out.WitnessFailed
	case out.Soundness != "":
		return "prover soundness: " + out.Soundness
	case out.FaultViolation != "":
		return "fault campaign: " + out.FaultViolation
	default:
		return "engine divergence: " + out.Divergence
	}
}
