package main

// CLI smoke tests for the experiments driver: the listing is a stable
// contract (CI scripts select experiments by id), and bad selectors
// must fail fast with exit code 2 rather than silently running the
// full evaluation.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var experimentsBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "experiments-cli")
	if err != nil {
		os.Exit(1)
	}
	experimentsBin = filepath.Join(dir, "experiments")
	out, err := exec.Command("go", "build", "-o", experimentsBin, ".").CombinedOutput()
	if err != nil {
		os.Stderr.Write(out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func runCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var buf bytes.Buffer
	cmd := exec.Command(experimentsBin, args...)
	cmd.Stdout, cmd.Stderr = &buf, &buf
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running %v: %v", args, err)
	}
	return buf.String(), code
}

func TestListEnumeratesExperiments(t *testing.T) {
	out, code := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d:\n%s", code, out)
	}
	for _, id := range []string{"table2", "fig9", "fig17"} {
		if !strings.Contains(out, id) {
			t.Errorf("-list output missing %q:\n%s", id, out)
		}
	}
}

func TestUnknownExperimentExitsTwo(t *testing.T) {
	out, code := runCLI(t, "-exp", "fig99")
	if code != 2 {
		t.Fatalf("unknown experiment exited %d, want 2:\n%s", code, out)
	}
	if !strings.Contains(out, "unknown experiment") {
		t.Errorf("error message does not name the failure:\n%s", out)
	}
}

func TestUnknownObsPolicyExitsTwo(t *testing.T) {
	out, code := runCLI(t, "-obs-dump", t.TempDir(), "-obs-policy", "NoSuchPolicy")
	if code != 2 {
		t.Fatalf("unknown -obs-policy exited %d, want 2:\n%s", code, out)
	}
	if !strings.Contains(out, "unknown policy") {
		t.Errorf("error message does not name the failure:\n%s", out)
	}
}
