// Command experiments regenerates the tables and figures of the
// SuperFE paper's evaluation (§8) from the simulators in this
// repository.
//
// Usage:
//
//	experiments                  # run everything at full scale
//	experiments -quick           # CI-sized workloads
//	experiments -exp fig12       # one experiment
//	experiments -list            # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"superfe/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "run CI-sized workloads")
	exp := flag.String("exp", "", "run a single experiment (table2..table4, fig9..fig17)")
	list := flag.Bool("list", false, "list experiment ids")
	flag.Parse()

	if *list {
		for _, id := range []string{"table2", "table3", "table4", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17"} {
			fmt.Println(id)
		}
		return
	}
	scale := harness.Full
	if *quick {
		scale = harness.Quick
	}
	if *exp != "" {
		t, ok := harness.ByID(*exp, scale)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		fmt.Println(t.Render())
		return
	}
	for _, t := range harness.All(scale) {
		fmt.Println(t.Render())
	}
}
