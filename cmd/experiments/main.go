// Command experiments regenerates the tables and figures of the
// SuperFE paper's evaluation (§8) from the simulators in this
// repository.
//
// Usage:
//
//	experiments                  # run everything at full scale
//	experiments -quick           # CI-sized workloads
//	experiments -exp fig12       # one experiment
//	experiments -list            # list experiment ids
//	experiments -obs-dump out/   # write telemetry artefacts and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"superfe/internal/apps"
	"superfe/internal/harness"
	"superfe/internal/policy"
	"superfe/internal/trace"
)

func main() {
	quick := flag.Bool("quick", false, "run CI-sized workloads")
	exp := flag.String("exp", "", "run a single experiment (table2..table4, fig9..fig17)")
	list := flag.Bool("list", false, "list experiment ids")
	obsDump := flag.String("obs-dump", "", "replay with telemetry enabled and write metrics.prom/metrics.json/series.csv/timelines.json into this directory")
	obsPolicy := flag.String("obs-policy", "Kitsune", "policy for -obs-dump")
	obsWorkers := flag.Int("obs-workers", 1, "worker count for -obs-dump (>1 uses the parallel engine)")
	flag.Parse()

	if *obsDump != "" {
		var pol *policy.Policy
		for _, e := range apps.Catalog() {
			if strings.EqualFold(e.Name, *obsPolicy) {
				pol = e.Build()
			}
		}
		if pol == nil {
			fmt.Fprintf(os.Stderr, "experiments: unknown policy %q\n", *obsPolicy)
			os.Exit(2)
		}
		tr := trace.Generate(trace.EnterpriseConfig, harness.Seed)
		if err := harness.ObsDump(*obsDump, pol, tr, *obsWorkers); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry artefacts written to %s\n", *obsDump)
		return
	}

	if *list {
		for _, id := range []string{"table2", "table3", "table4", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17"} {
			fmt.Println(id)
		}
		return
	}
	scale := harness.Full
	if *quick {
		scale = harness.Quick
	}
	if *exp != "" {
		t, ok := harness.ByID(*exp, scale)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		fmt.Println(t.Render())
		return
	}
	for _, t := range harness.All(scale) {
		fmt.Println(t.Render())
	}
}
